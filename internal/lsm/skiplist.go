package lsm

import (
	"bytes"
	"math/rand"
)

// entryKind distinguishes the three mutation types an LSM tree records.
type entryKind byte

const (
	kindPut entryKind = iota + 1
	kindMerge
	kindDelete
)

// internalCompare orders entries by user key ascending, then by sequence
// number descending, so the newest version of a key is encountered first —
// the standard LSM internal-key ordering.
func internalCompare(aKey []byte, aSeq uint64, bKey []byte, bSeq uint64) int {
	if c := bytes.Compare(aKey, bKey); c != 0 {
		return c
	}
	switch {
	case aSeq > bSeq:
		return -1
	case aSeq < bSeq:
		return 1
	default:
		return 0
	}
}

const (
	skipMaxHeight = 12
	skipBranch    = 4
)

type skipNode struct {
	key   []byte
	seq   uint64
	kind  entryKind
	value []byte
	next  []*skipNode
}

// skiplist is the sorted in-memory memtable structure. It is owned by a
// single writer goroutine (the store instance) and needs no locking.
type skiplist struct {
	head   *skipNode
	height int
	rng    *rand.Rand
	size   int64 // approximate bytes
	count  int
}

func newSkiplist() *skiplist {
	return &skiplist{
		head:   &skipNode{next: make([]*skipNode, skipMaxHeight)},
		height: 1,
		rng:    rand.New(rand.NewSource(0xf10df10d)),
	}
}

func (s *skiplist) randomHeight() int {
	h := 1
	for h < skipMaxHeight && s.rng.Intn(skipBranch) == 0 {
		h++
	}
	return h
}

// insert adds an entry; (key, seq) pairs are unique because seq increments
// on every write. key and value are stored as given (callers copy).
func (s *skiplist) insert(key []byte, seq uint64, kind entryKind, value []byte) {
	var prev [skipMaxHeight]*skipNode
	x := s.head
	for level := s.height - 1; level >= 0; level-- {
		for x.next[level] != nil && internalCompare(x.next[level].key, x.next[level].seq, key, seq) < 0 {
			x = x.next[level]
		}
		prev[level] = x
	}
	h := s.randomHeight()
	if h > s.height {
		for level := s.height; level < h; level++ {
			prev[level] = s.head
		}
		s.height = h
	}
	n := &skipNode{key: key, seq: seq, kind: kind, value: value, next: make([]*skipNode, h)}
	for level := 0; level < h; level++ {
		n.next[level] = prev[level].next[level]
		prev[level].next[level] = n
	}
	s.size += int64(len(key) + len(value) + 64)
	s.count++
}

// seekGE returns the first node whose internal key is >= (key, seq).
func (s *skiplist) seekGE(key []byte, seq uint64) *skipNode {
	x := s.head
	for level := s.height - 1; level >= 0; level-- {
		for x.next[level] != nil && internalCompare(x.next[level].key, x.next[level].seq, key, seq) < 0 {
			x = x.next[level]
		}
	}
	return x.next[0]
}

// first returns the smallest node, or nil when empty.
func (s *skiplist) first() *skipNode { return s.head.next[0] }

// approximateSize returns the memtable's approximate memory footprint.
func (s *skiplist) approximateSize() int64 { return s.size }

// len returns the number of entries.
func (s *skiplist) len() int { return s.count }

// memIterator walks a skiplist in internal-key order.
type memIterator struct {
	node *skipNode
}

func (s *skiplist) iterator() *memIterator { return &memIterator{node: s.first()} }

func (it *memIterator) valid() bool { return it.node != nil }

func (it *memIterator) entry() (key []byte, seq uint64, kind entryKind, value []byte) {
	n := it.node
	return n.key, n.seq, n.kind, n.value
}

func (it *memIterator) next() { it.node = it.node.next[0] }
