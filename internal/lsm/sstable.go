package lsm

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"os"

	"flowkv/internal/binio"
	"flowkv/internal/metrics"
)

// SSTable layout (all integers varint unless noted):
//
//	data blocks:   repeated entry { kind(1) | seq | keyLen key | valLen val }
//	index block:   repeated { firstKeyLen firstKey | lastKeyLen lastKey | off | len }
//	bloom block:   bit array over user keys
//	footer (fixed): indexOff(8) indexLen(8) bloomOff(8) bloomLen(8) entryCount(8) magic(8)
//
// Blocks are the read unit and flow through the block cache.

const (
	sstMagic        = 0x464c4f574b563031 // "FLOWKV01"
	sstFooterSize   = 48
	defaultBlockLen = 16 << 10
	bloomBitsPerKey = 10
	bloomHashes     = 7
)

// bloomFilter is a standard double-hashing Bloom filter over user keys.
type bloomFilter struct {
	bits []byte
}

func newBloom(nKeys int) *bloomFilter {
	nBits := nKeys * bloomBitsPerKey
	if nBits < 64 {
		nBits = 64
	}
	return &bloomFilter{bits: make([]byte, (nBits+7)/8)}
}

func bloomHash(key []byte) (uint64, uint64) {
	h := fnv.New64a()
	h.Write(key)
	h1 := h.Sum64()
	h2 := h1>>33 | h1<<31
	return h1, h2
}

func (b *bloomFilter) add(key []byte) {
	h1, h2 := bloomHash(key)
	n := uint64(len(b.bits)) * 8
	for i := uint64(0); i < bloomHashes; i++ {
		bit := (h1 + i*h2) % n
		b.bits[bit/8] |= 1 << (bit % 8)
	}
}

func (b *bloomFilter) mayContain(key []byte) bool {
	if len(b.bits) == 0 {
		return true
	}
	h1, h2 := bloomHash(key)
	n := uint64(len(b.bits)) * 8
	for i := uint64(0); i < bloomHashes; i++ {
		bit := (h1 + i*h2) % n
		if b.bits[bit/8]&(1<<(bit%8)) == 0 {
			return false
		}
	}
	return true
}

// blockHandle locates one block inside an SSTable file, with the block's
// CRC-32C for corruption detection on read.
type blockHandle struct {
	off int64
	len int
	crc uint32
}

// indexEntry describes one data block's key range and location.
type indexEntry struct {
	firstKey []byte
	lastKey  []byte
	handle   blockHandle
}

// sstWriter builds an SSTable file from entries supplied in internal-key
// order.
type sstWriter struct {
	f        *os.File
	w        *bufio.Writer
	off      int64
	block    []byte
	blockLen int
	first    []byte
	last     []byte
	index    []indexEntry
	bloom    *bloomFilter
	count    int64
	smallest []byte
	largest  []byte
	bd       *metrics.Breakdown
}

func newSSTWriter(path string, expectKeys int, bd *metrics.Breakdown) (*sstWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("lsm: create sstable: %w", err)
	}
	return &sstWriter{
		f:        f,
		w:        bufio.NewWriterSize(f, 256*1024),
		blockLen: defaultBlockLen,
		bloom:    newBloom(expectKeys),
		bd:       bd,
	}, nil
}

// add appends one entry; entries must arrive in internal-key order.
func (sw *sstWriter) add(key []byte, seq uint64, kind entryKind, value []byte) error {
	if sw.first == nil {
		sw.first = append([]byte(nil), key...)
	}
	sw.last = append(sw.last[:0], key...)
	if sw.smallest == nil {
		sw.smallest = append([]byte(nil), key...)
	}
	sw.largest = append(sw.largest[:0], key...)
	sw.bloom.add(key)
	sw.count++

	sw.block = append(sw.block, byte(kind))
	sw.block = binary.AppendUvarint(sw.block, seq)
	sw.block = binio.PutBytes(sw.block, key)
	sw.block = binio.PutBytes(sw.block, value)
	if len(sw.block) >= sw.blockLen {
		return sw.flushBlock()
	}
	return nil
}

func (sw *sstWriter) flushBlock() error {
	if len(sw.block) == 0 {
		return nil
	}
	h := blockHandle{off: sw.off, len: len(sw.block), crc: binio.Checksum(sw.block)}
	if _, err := sw.w.Write(sw.block); err != nil {
		return err
	}
	if sw.bd != nil {
		sw.bd.AddBytesWritten(int64(len(sw.block)))
	}
	sw.off += int64(len(sw.block))
	sw.index = append(sw.index, indexEntry{
		firstKey: sw.first,
		lastKey:  append([]byte(nil), sw.last...),
		handle:   h,
	})
	sw.block = sw.block[:0]
	sw.first = nil
	return nil
}

// finish writes the index, bloom filter and footer, returning the table's
// metadata. The writer is closed.
func (sw *sstWriter) finish() (*tableMeta, error) {
	if err := sw.flushBlock(); err != nil {
		return nil, err
	}
	var idx []byte
	for _, e := range sw.index {
		idx = binio.PutBytes(idx, e.firstKey)
		idx = binio.PutBytes(idx, e.lastKey)
		idx = binary.AppendUvarint(idx, uint64(e.handle.off))
		idx = binary.AppendUvarint(idx, uint64(e.handle.len))
		idx = binary.LittleEndian.AppendUint32(idx, e.handle.crc)
	}
	indexOff := sw.off
	if _, err := sw.w.Write(idx); err != nil {
		return nil, err
	}
	sw.off += int64(len(idx))
	bloomOff := sw.off
	if _, err := sw.w.Write(sw.bloom.bits); err != nil {
		return nil, err
	}
	sw.off += int64(len(sw.bloom.bits))

	var footer [sstFooterSize]byte
	binary.LittleEndian.PutUint64(footer[0:], uint64(indexOff))
	binary.LittleEndian.PutUint64(footer[8:], uint64(len(idx)))
	binary.LittleEndian.PutUint64(footer[16:], uint64(bloomOff))
	binary.LittleEndian.PutUint64(footer[24:], uint64(len(sw.bloom.bits)))
	binary.LittleEndian.PutUint64(footer[32:], uint64(sw.count))
	binary.LittleEndian.PutUint64(footer[40:], sstMagic)
	if _, err := sw.w.Write(footer[:]); err != nil {
		return nil, err
	}
	sw.off += sstFooterSize
	if sw.bd != nil {
		sw.bd.AddBytesWritten(int64(len(idx) + len(sw.bloom.bits) + sstFooterSize))
	}
	if err := sw.w.Flush(); err != nil {
		return nil, err
	}
	if err := sw.f.Close(); err != nil {
		return nil, err
	}
	return &tableMeta{
		path:     sw.f.Name(),
		size:     sw.off,
		count:    sw.count,
		smallest: sw.smallest,
		largest:  sw.largest,
	}, nil
}

func (sw *sstWriter) abort() {
	sw.f.Close()
	os.Remove(sw.f.Name())
}

// tableMeta is the in-memory descriptor of one on-disk SSTable.
type tableMeta struct {
	num      uint64
	path     string
	size     int64
	count    int64
	smallest []byte
	largest  []byte
}

// sstReader serves point lookups and scans from one SSTable.
type sstReader struct {
	meta  *tableMeta
	f     *os.File
	index []indexEntry
	bloom *bloomFilter
	cache *blockCache
	bd    *metrics.Breakdown
}

func openSST(meta *tableMeta, cache *blockCache, bd *metrics.Breakdown) (*sstReader, error) {
	f, err := os.Open(meta.path)
	if err != nil {
		return nil, fmt.Errorf("lsm: open sstable: %w", err)
	}
	var footer [sstFooterSize]byte
	if _, err := f.ReadAt(footer[:], meta.size-sstFooterSize); err != nil {
		f.Close()
		return nil, fmt.Errorf("lsm: sstable footer: %w", err)
	}
	if binary.LittleEndian.Uint64(footer[40:]) != sstMagic {
		f.Close()
		return nil, fmt.Errorf("lsm: %s: bad magic", meta.path)
	}
	indexOff := int64(binary.LittleEndian.Uint64(footer[0:]))
	indexLen := int(binary.LittleEndian.Uint64(footer[8:]))
	bloomOff := int64(binary.LittleEndian.Uint64(footer[16:]))
	bloomLen := int(binary.LittleEndian.Uint64(footer[24:]))

	idxBuf := make([]byte, indexLen)
	if _, err := f.ReadAt(idxBuf, indexOff); err != nil {
		f.Close()
		return nil, err
	}
	var index []indexEntry
	for len(idxBuf) > 0 {
		first, n, err := binio.Bytes(idxBuf)
		if err != nil {
			f.Close()
			return nil, err
		}
		idxBuf = idxBuf[n:]
		last, n, err := binio.Bytes(idxBuf)
		if err != nil {
			f.Close()
			return nil, err
		}
		idxBuf = idxBuf[n:]
		off, n := binary.Uvarint(idxBuf)
		idxBuf = idxBuf[n:]
		blen, n := binary.Uvarint(idxBuf)
		idxBuf = idxBuf[n:]
		if len(idxBuf) < 4 {
			f.Close()
			return nil, fmt.Errorf("lsm: %s: truncated index", meta.path)
		}
		crc := binary.LittleEndian.Uint32(idxBuf)
		idxBuf = idxBuf[4:]
		index = append(index, indexEntry{
			firstKey: append([]byte(nil), first...),
			lastKey:  append([]byte(nil), last...),
			handle:   blockHandle{off: int64(off), len: int(blen), crc: crc},
		})
	}
	bloomBits := make([]byte, bloomLen)
	if _, err := f.ReadAt(bloomBits, bloomOff); err != nil {
		f.Close()
		return nil, err
	}
	if bd != nil {
		bd.AddBytesRead(int64(sstFooterSize + indexLen + bloomLen))
	}
	return &sstReader{
		meta:  meta,
		f:     f,
		index: index,
		bloom: &bloomFilter{bits: bloomBits},
		cache: cache,
		bd:    bd,
	}, nil
}

func (r *sstReader) close() error { return r.f.Close() }

// readBlock fetches a data block, via the block cache when present.
func (r *sstReader) readBlock(h blockHandle) ([]byte, error) {
	if r.cache != nil {
		if b, ok := r.cache.get(r.meta.num, h.off); ok {
			return b, nil
		}
	}
	buf := make([]byte, h.len)
	if _, err := r.f.ReadAt(buf, h.off); err != nil {
		return nil, fmt.Errorf("lsm: read block: %w", err)
	}
	if binio.Checksum(buf) != h.crc {
		return nil, fmt.Errorf("lsm: %s: block at %d: %w", r.meta.path, h.off, binio.ErrCorrupt)
	}
	if r.bd != nil {
		r.bd.AddBytesRead(int64(h.len))
	}
	if r.cache != nil {
		r.cache.put(r.meta.num, h.off, buf)
	}
	return buf, nil
}

// blockEntry decodes entries sequentially from a data block.
type blockCursor struct {
	b []byte
}

func (c *blockCursor) next() (key []byte, seq uint64, kind entryKind, value []byte, ok bool, err error) {
	if len(c.b) == 0 {
		return nil, 0, 0, nil, false, nil
	}
	kind = entryKind(c.b[0])
	c.b = c.b[1:]
	seq, n := binary.Uvarint(c.b)
	if n <= 0 {
		return nil, 0, 0, nil, false, binio.ErrCorrupt
	}
	c.b = c.b[n:]
	key, n, err = binio.Bytes(c.b)
	if err != nil {
		return nil, 0, 0, nil, false, err
	}
	c.b = c.b[n:]
	value, n, err = binio.Bytes(c.b)
	if err != nil {
		return nil, 0, 0, nil, false, err
	}
	c.b = c.b[n:]
	return key, seq, kind, value, true, nil
}

// get collects the version chain for key from this table: it appends any
// merge operands found (newest first) to operands and reports a base
// value or tombstone if one was found.
//
// Returns (base, foundBase, operands, error); base may be nil with
// foundBase true for a tombstone (deleted=true).
func (r *sstReader) get(key []byte, operands [][]byte) (base []byte, foundBase, deleted bool, _ [][]byte, err error) {
	if !r.bloom.mayContain(key) {
		return nil, false, false, operands, nil
	}
	// Binary search the block index for the first block whose lastKey >= key.
	lo, hi := 0, len(r.index)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(r.index[mid].lastKey, key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for bi := lo; bi < len(r.index); bi++ {
		if bytes.Compare(r.index[bi].firstKey, key) > 0 {
			break
		}
		block, err := r.readBlock(r.index[bi].handle)
		if err != nil {
			return nil, false, false, operands, err
		}
		cur := blockCursor{b: block}
		for {
			ekey, _, kind, val, ok, err := cur.next()
			if err != nil {
				return nil, false, false, operands, err
			}
			if !ok {
				break
			}
			c := bytes.Compare(ekey, key)
			if c < 0 {
				continue
			}
			if c > 0 {
				return nil, false, false, operands, nil
			}
			// Entries for the key are newest-first (seq desc).
			switch kind {
			case kindMerge:
				operands = append(operands, append([]byte(nil), val...))
			case kindPut:
				return append([]byte(nil), val...), true, false, operands, nil
			case kindDelete:
				return nil, true, true, operands, nil
			}
		}
	}
	return nil, false, false, operands, nil
}

// tableIterator walks all entries of an SSTable in internal-key order.
type tableIterator struct {
	r     *sstReader
	bi    int
	cur   blockCursor
	key   []byte
	seq   uint64
	kind  entryKind
	value []byte
	valid bool
	err   error
}

func (r *sstReader) iterator() *tableIterator {
	it := &tableIterator{r: r}
	it.advance()
	return it
}

func (it *tableIterator) advance() {
	for {
		key, seq, kind, value, ok, err := it.cur.next()
		if err != nil {
			it.err = err
			it.valid = false
			return
		}
		if ok {
			it.key, it.seq, it.kind, it.value = key, seq, kind, value
			it.valid = true
			return
		}
		if it.bi >= len(it.r.index) {
			it.valid = false
			return
		}
		block, err := it.r.readBlock(it.r.index[it.bi].handle)
		if err != nil {
			it.err = err
			it.valid = false
			return
		}
		it.bi++
		it.cur = blockCursor{b: block}
	}
}

func (it *tableIterator) Valid() bool { return it.valid }
func (it *tableIterator) Err() error  { return it.err }
func (it *tableIterator) Entry() (key []byte, seq uint64, kind entryKind, value []byte) {
	return it.key, it.seq, it.kind, it.value
}
func (it *tableIterator) Next() { it.advance() }
