// Package memstore implements the in-memory state store baseline: the
// default backend of SPEs such as Flink and Samza before states outgrow
// memory (§2.2). It keeps all window state in hash maps and is therefore
// the fastest backend at small state sizes — and the first to fail at
// large ones.
//
// The paper's in-memory results are shaped by two JVM effects that a Go
// process does not naturally reproduce, so the store models them
// explicitly (documented as a substitution in DESIGN.md):
//
//   - out-of-memory failures: a capacity limit; exceeding it returns
//     ErrOutOfMemory, the analogue of the crossed-out bars in Figure 8;
//   - garbage-collection pressure: a pause model that charges stall time
//     proportional to the live heap every time an allocation threshold
//     passes, the analogue of the growing GC stalls that let FlowKV beat
//     the in-memory store at large windows.
package memstore

import (
	"errors"
	"time"

	"flowkv/internal/window"
)

// ErrOutOfMemory reports that the store exceeded its memory capacity,
// matching the paper's in-memory failure mode on large states.
var ErrOutOfMemory = errors.New("memstore: out of memory")

// ErrClosed reports an operation on a closed store.
var ErrClosed = errors.New("memstore: closed")

// Options configures a Store.
type Options struct {
	// CapacityBytes is the memory limit; 0 means unlimited.
	CapacityBytes int64
	// GCThresholdBytes triggers one simulated GC pause per this many
	// bytes allocated. 0 disables the GC model. Default 0.
	GCThresholdBytes int64
	// GCMarkBytesPerMs is the modeled mark throughput: each pause lasts
	// liveBytes / GCMarkBytesPerMs milliseconds. Default 64 MiB/ms
	// (a fast concurrent collector's stop-the-world share).
	GCMarkBytesPerMs int64
	// Sleeper overrides the pause implementation (tests inject a fake).
	Sleeper func(d time.Duration)
}

func (o *Options) fill() {
	if o.GCMarkBytesPerMs <= 0 {
		o.GCMarkBytesPerMs = 64 << 20
	}
	if o.Sleeper == nil {
		o.Sleeper = time.Sleep
	}
}

type id struct {
	key string
	w   window.Window
}

// Store is a purely in-memory window state store for one worker.
type Store struct {
	opts Options

	appended map[id][][]byte
	byWindow map[window.Window]map[string]struct{}
	aggs     map[id][]byte

	live       int64
	sinceGC    int64
	gcPauses   int64
	gcStallDur time.Duration
	closed     bool
}

// Open returns an empty in-memory store.
func Open(opts Options) *Store {
	opts.fill()
	return &Store{
		opts:     opts,
		appended: make(map[id][][]byte),
		byWindow: make(map[window.Window]map[string]struct{}),
		aggs:     make(map[id][]byte),
	}
}

// Name identifies the backend in experiment reports.
func (s *Store) Name() string { return "inmem" }

// alloc charges n live bytes, runs the GC model, and enforces capacity.
func (s *Store) alloc(n int64) error {
	s.live += n
	if s.opts.CapacityBytes > 0 && s.live > s.opts.CapacityBytes {
		return ErrOutOfMemory
	}
	if s.opts.GCThresholdBytes > 0 {
		s.sinceGC += n
		if s.sinceGC >= s.opts.GCThresholdBytes {
			s.sinceGC = 0
			pause := time.Duration(s.live/s.opts.GCMarkBytesPerMs) * time.Millisecond
			if pause > 0 {
				s.opts.Sleeper(pause)
				s.gcPauses++
				s.gcStallDur += pause
			}
		}
	}
	return nil
}

func (s *Store) free(n int64) { s.live -= n }

// Append adds a value to the (key, window) list.
func (s *Store) Append(key, value []byte, w window.Window, _ int64) error {
	if s.closed {
		return ErrClosed
	}
	ident := id{key: string(key), w: w}
	vc := append([]byte(nil), value...)
	s.appended[ident] = append(s.appended[ident], vc)
	set := s.byWindow[w]
	if set == nil {
		set = make(map[string]struct{})
		s.byWindow[w] = set
	}
	set[ident.key] = struct{}{}
	return s.alloc(int64(len(key) + len(value) + 48))
}

// ReadAppended fetches and removes the values of (key, window).
func (s *Store) ReadAppended(key []byte, w window.Window) ([][]byte, error) {
	if s.closed {
		return nil, ErrClosed
	}
	ident := id{key: string(key), w: w}
	vals, ok := s.appended[ident]
	if !ok {
		return nil, nil
	}
	delete(s.appended, ident)
	if set := s.byWindow[w]; set != nil {
		delete(set, ident.key)
		if len(set) == 0 {
			delete(s.byWindow, w)
		}
	}
	var n int64
	for _, v := range vals {
		n += int64(len(v) + 48)
	}
	s.free(n + int64(len(key)))
	return vals, nil
}

// PeekAppended returns the (key, window) list without consuming it.
func (s *Store) PeekAppended(key []byte, w window.Window) ([][]byte, error) {
	if s.closed {
		return nil, ErrClosed
	}
	return s.appended[id{key: string(key), w: w}], nil
}

// ReadWindow drains every key of window w; supported natively by maps.
func (s *Store) ReadWindow(w window.Window, emit func(key []byte, values [][]byte) error) (bool, error) {
	if s.closed {
		return false, ErrClosed
	}
	set := s.byWindow[w]
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	for _, k := range keys {
		vals, err := s.ReadAppended([]byte(k), w)
		if err != nil {
			return true, err
		}
		if vals == nil {
			continue
		}
		if err := emit([]byte(k), vals); err != nil {
			return true, err
		}
	}
	return true, nil
}

// DropAppended discards the (key, window) list without reading it.
func (s *Store) DropAppended(key []byte, w window.Window) error {
	_, err := s.ReadAppended(key, w)
	return err
}

// GetAgg returns the aggregate of (key, window).
func (s *Store) GetAgg(key []byte, w window.Window) ([]byte, bool, error) {
	if s.closed {
		return nil, false, ErrClosed
	}
	v, ok := s.aggs[id{key: string(key), w: w}]
	return v, ok, nil
}

// PutAgg stores the aggregate of (key, window).
func (s *Store) PutAgg(key []byte, w window.Window, agg []byte) error {
	if s.closed {
		return ErrClosed
	}
	ident := id{key: string(key), w: w}
	if old, ok := s.aggs[ident]; ok {
		s.free(int64(len(old)))
	} else {
		if err := s.alloc(int64(len(key) + 48)); err != nil {
			return err
		}
	}
	s.aggs[ident] = append([]byte(nil), agg...)
	return s.alloc(int64(len(agg)))
}

// TakeAgg fetches and removes the aggregate of (key, window).
func (s *Store) TakeAgg(key []byte, w window.Window) ([]byte, bool, error) {
	if s.closed {
		return nil, false, ErrClosed
	}
	ident := id{key: string(key), w: w}
	v, ok := s.aggs[ident]
	if ok {
		delete(s.aggs, ident)
		s.free(int64(len(v) + len(key) + 48))
	}
	return v, ok, nil
}

// LiveBytes returns the modeled live heap size.
func (s *Store) LiveBytes() int64 { return s.live }

// GCPauses returns the number of simulated GC pauses taken.
func (s *Store) GCPauses() int64 { return s.gcPauses }

// GCStall returns the total simulated GC stall time.
func (s *Store) GCStall() time.Duration { return s.gcStallDur }

// Flush is a no-op for the in-memory store.
func (s *Store) Flush() error {
	if s.closed {
		return ErrClosed
	}
	return nil
}

// Close releases the store's maps.
func (s *Store) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	s.appended, s.byWindow, s.aggs = nil, nil, nil
	return nil
}

// Destroy is equivalent to Close; there is no on-disk state.
func (s *Store) Destroy() error { return s.Close() }
