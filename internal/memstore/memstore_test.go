package memstore

import (
	"fmt"
	"testing"
	"time"

	"flowkv/internal/window"
)

func TestAppendReadAppended(t *testing.T) {
	s := Open(Options{})
	defer s.Destroy()
	w := window.Window{Start: 0, End: 100}
	s.Append([]byte("k"), []byte("a"), w, 0)
	s.Append([]byte("k"), []byte("b"), w, 1)
	vals, err := s.ReadAppended([]byte("k"), w)
	if err != nil || len(vals) != 2 || string(vals[0]) != "a" || string(vals[1]) != "b" {
		t.Fatalf("vals=%q err=%v", vals, err)
	}
	// Fetch & remove.
	vals, err = s.ReadAppended([]byte("k"), w)
	if err != nil || vals != nil {
		t.Fatalf("second read: %q %v", vals, err)
	}
}

func TestReadWindowDrainsAllKeys(t *testing.T) {
	s := Open(Options{})
	defer s.Destroy()
	w := window.Window{Start: 0, End: 100}
	other := window.Window{Start: 100, End: 200}
	for i := 0; i < 10; i++ {
		s.Append([]byte(fmt.Sprintf("k%d", i)), []byte("v"), w, 0)
	}
	s.Append([]byte("other"), []byte("v"), other, 0)
	got := map[string]int{}
	ok, err := s.ReadWindow(w, func(key []byte, values [][]byte) error {
		got[string(key)] += len(values)
		return nil
	})
	if !ok || err != nil {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if len(got) != 10 {
		t.Fatalf("drained %d keys", len(got))
	}
	// Other window untouched.
	vals, _ := s.ReadAppended([]byte("other"), other)
	if len(vals) != 1 {
		t.Error("other window lost state")
	}
}

func TestAggLifecycle(t *testing.T) {
	s := Open(Options{})
	defer s.Destroy()
	w := window.Window{Start: 0, End: 100}
	if _, ok, _ := s.GetAgg([]byte("k"), w); ok {
		t.Error("missing agg found")
	}
	s.PutAgg([]byte("k"), w, []byte("10"))
	v, ok, _ := s.GetAgg([]byte("k"), w)
	if !ok || string(v) != "10" {
		t.Fatalf("GetAgg = %q,%v", v, ok)
	}
	s.PutAgg([]byte("k"), w, []byte("20"))
	v, ok, _ = s.TakeAgg([]byte("k"), w)
	if !ok || string(v) != "20" {
		t.Fatalf("TakeAgg = %q,%v", v, ok)
	}
	if _, ok, _ := s.GetAgg([]byte("k"), w); ok {
		t.Error("TakeAgg did not remove")
	}
}

func TestOutOfMemory(t *testing.T) {
	s := Open(Options{CapacityBytes: 1024})
	defer s.Destroy()
	w := window.Window{Start: 0, End: 100}
	var sawOOM bool
	for i := 0; i < 100; i++ {
		if err := s.Append([]byte("k"), make([]byte, 64), w, 0); err == ErrOutOfMemory {
			sawOOM = true
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if !sawOOM {
		t.Fatal("no OOM despite exceeding capacity")
	}
}

func TestMemoryAccountingFreesOnRead(t *testing.T) {
	s := Open(Options{})
	defer s.Destroy()
	w := window.Window{Start: 0, End: 100}
	for i := 0; i < 10; i++ {
		s.Append([]byte("k"), make([]byte, 100), w, 0)
	}
	before := s.LiveBytes()
	s.ReadAppended([]byte("k"), w)
	if after := s.LiveBytes(); after >= before {
		t.Errorf("live bytes %d -> %d: read did not free", before, after)
	}
}

func TestGCPauseModel(t *testing.T) {
	var slept time.Duration
	s := Open(Options{
		GCThresholdBytes: 1024,
		GCMarkBytesPerMs: 1, // 1 byte per ms: huge modeled pauses
		Sleeper:          func(d time.Duration) { slept += d },
	})
	defer s.Destroy()
	w := window.Window{Start: 0, End: 100}
	for i := 0; i < 50; i++ {
		s.Append([]byte("k"), make([]byte, 100), w, 0)
	}
	if s.GCPauses() == 0 {
		t.Fatal("GC model took no pauses")
	}
	if slept == 0 || s.GCStall() != slept {
		t.Errorf("stall accounting: slept=%v recorded=%v", slept, s.GCStall())
	}
	// Pauses grow with live heap: the last pause exceeds the first.
	if s.GCStall() < time.Duration(s.GCPauses())*time.Millisecond {
		t.Error("pauses do not scale with heap")
	}
}

func TestGCDisabledByDefault(t *testing.T) {
	s := Open(Options{})
	defer s.Destroy()
	w := window.Window{Start: 0, End: 100}
	for i := 0; i < 1000; i++ {
		s.Append([]byte("k"), make([]byte, 100), w, 0)
	}
	if s.GCPauses() != 0 {
		t.Error("GC model active without threshold")
	}
}

func TestDropAppended(t *testing.T) {
	s := Open(Options{})
	defer s.Destroy()
	w := window.Window{Start: 0, End: 100}
	s.Append([]byte("k"), []byte("v"), w, 0)
	if err := s.DropAppended([]byte("k"), w); err != nil {
		t.Fatal(err)
	}
	if vals, _ := s.ReadAppended([]byte("k"), w); vals != nil {
		t.Error("dropped state readable")
	}
}

func TestClosedErrors(t *testing.T) {
	s := Open(Options{})
	s.Close()
	if err := s.Append(nil, nil, window.Window{}, 0); err != ErrClosed {
		t.Errorf("Append: %v", err)
	}
	if _, err := s.ReadAppended(nil, window.Window{}); err != ErrClosed {
		t.Errorf("ReadAppended: %v", err)
	}
	if _, _, err := s.GetAgg(nil, window.Window{}); err != ErrClosed {
		t.Errorf("GetAgg: %v", err)
	}
	if err := s.PutAgg(nil, window.Window{}, nil); err != ErrClosed {
		t.Errorf("PutAgg: %v", err)
	}
	if _, _, err := s.TakeAgg(nil, window.Window{}); err != ErrClosed {
		t.Errorf("TakeAgg: %v", err)
	}
	if err := s.Flush(); err != ErrClosed {
		t.Errorf("Flush: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}
