// Package metrics provides the instrumentation used to reproduce the
// paper's performance breakdowns: monotonic counters, CPU-time breakdown
// timers bucketed by store operation (write / read+delete / compaction),
// and latency histograms with percentile queries (for the P95 figures).
//
// The paper derives its Figure 4 and Figure 10 breakdowns from perf
// flamegraphs and dstat; we substitute explicit instrumentation — every
// store call path is timed into a named bucket and every byte of file I/O
// is counted at the logfile layer — which yields the same decomposition
// deterministically.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing value. Counters are safe for
// concurrent use; store instances are single-threaded but the harness
// aggregates counters across workers.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.v.Store(0) }

// Op names one bucket of the store CPU-time breakdown used throughout the
// evaluation (paper Figures 4 and 10).
type Op int

// Breakdown buckets. Write covers Append/Put and buffer flushes; Read
// covers Get/GetWindow/Scan including deletes of consumed windows;
// Compact covers compaction; IOWait covers time blocked on file I/O.
const (
	OpWrite Op = iota
	OpRead
	OpCompact
	OpIOWait
	numOps
)

// String returns the breakdown bucket label used in reports.
func (op Op) String() string {
	switch op {
	case OpWrite:
		return "write"
	case OpRead:
		return "read+delete"
	case OpCompact:
		return "compaction"
	case OpIOWait:
		return "io-wait"
	default:
		return fmt.Sprintf("op(%d)", int(op))
	}
}

// Breakdown accumulates wall time per store operation bucket plus I/O byte
// counters. It is the Go stand-in for the paper's flamegraph analysis.
type Breakdown struct {
	nanos        [numOps]atomic.Int64
	calls        [numOps]atomic.Int64
	bytesRead    atomic.Int64
	bytesWritten atomic.Int64
}

// Time runs fn and charges its duration to bucket op.
func (b *Breakdown) Time(op Op, fn func()) {
	start := time.Now()
	fn()
	b.Observe(op, time.Since(start))
}

// Observe charges d to bucket op.
func (b *Breakdown) Observe(op Op, d time.Duration) {
	b.nanos[op].Add(int64(d))
	b.calls[op].Add(1)
}

// Start begins a timed region charged to op when the returned stop
// function is called. Intended for defer-free hot paths.
func (b *Breakdown) Start(op Op) func() {
	start := time.Now()
	return func() { b.Observe(op, time.Since(start)) }
}

// AddBytesRead records n bytes read from persistent storage.
func (b *Breakdown) AddBytesRead(n int64) { b.bytesRead.Add(n) }

// AddBytesWritten records n bytes written to persistent storage.
func (b *Breakdown) AddBytesWritten(n int64) { b.bytesWritten.Add(n) }

// Total returns the accumulated time in bucket op.
func (b *Breakdown) Total(op Op) time.Duration {
	return time.Duration(b.nanos[op].Load())
}

// Calls returns the number of observations in bucket op.
func (b *Breakdown) Calls(op Op) int64 { return b.calls[op].Load() }

// BytesRead returns total bytes read from storage.
func (b *Breakdown) BytesRead() int64 { return b.bytesRead.Load() }

// BytesWritten returns total bytes written to storage.
func (b *Breakdown) BytesWritten() int64 { return b.bytesWritten.Load() }

// StoreTotal returns the sum of all store-op buckets excluding I/O wait;
// this is the "Store (CPU)" bar of paper Figure 4.
func (b *Breakdown) StoreTotal() time.Duration {
	var sum time.Duration
	for op := Op(0); op < OpIOWait; op++ {
		sum += b.Total(op)
	}
	return sum
}

// Merge adds other's totals into b.
func (b *Breakdown) Merge(other *Breakdown) {
	for op := Op(0); op < numOps; op++ {
		b.nanos[op].Add(other.nanos[op].Load())
		b.calls[op].Add(other.calls[op].Load())
	}
	b.bytesRead.Add(other.bytesRead.Load())
	b.bytesWritten.Add(other.bytesWritten.Load())
}

// Reset zeroes all buckets.
func (b *Breakdown) Reset() {
	for op := Op(0); op < numOps; op++ {
		b.nanos[op].Store(0)
		b.calls[op].Store(0)
	}
	b.bytesRead.Store(0)
	b.bytesWritten.Store(0)
}

// String formats the breakdown as a single report line.
func (b *Breakdown) String() string {
	var sb strings.Builder
	for op := Op(0); op < numOps; op++ {
		if op > 0 {
			sb.WriteString("  ")
		}
		fmt.Fprintf(&sb, "%s=%v", op, b.Total(op).Round(time.Microsecond))
	}
	fmt.Fprintf(&sb, "  read=%s written=%s",
		FormatBytes(b.BytesRead()), FormatBytes(b.BytesWritten()))
	return sb.String()
}

// FormatBytes renders a byte count with a binary-unit suffix.
func FormatBytes(n int64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%dB", n)
	}
	div, exp := int64(unit), 0
	for m := n / unit; m >= unit; m /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f%ciB", float64(n)/float64(div), "KMGTPE"[exp])
}

// Histogram records durations into exponentially-spaced buckets and
// answers percentile queries. The layout gives <2% relative error across
// 1µs..100s, sufficient for the paper's P95 latency comparisons.
type Histogram struct {
	counts []atomic.Int64
	total  atomic.Int64
	min    atomic.Int64
	max    atomic.Int64
}

const (
	histBucketsPerDecade = 64
	histDecades          = 9 // 1µs .. ~1000s in nanoseconds (1e3..1e12)
	histFloorNanos       = 1e3
)

// NewHistogram returns an empty latency histogram.
func NewHistogram() *Histogram {
	h := &Histogram{counts: make([]atomic.Int64, histBucketsPerDecade*histDecades)}
	h.min.Store(math.MaxInt64)
	return h
}

func histBucket(d time.Duration) int {
	n := float64(d)
	if n < histFloorNanos {
		return 0
	}
	idx := int(math.Log10(n/histFloorNanos) * histBucketsPerDecade)
	if idx >= histBucketsPerDecade*histDecades {
		idx = histBucketsPerDecade*histDecades - 1
	}
	return idx
}

func histBucketUpper(i int) time.Duration {
	return time.Duration(histFloorNanos * math.Pow(10, float64(i+1)/histBucketsPerDecade))
}

// Observe records one duration sample.
func (h *Histogram) Observe(d time.Duration) {
	h.counts[histBucket(d)].Add(1)
	h.total.Add(1)
	for {
		cur := h.min.Load()
		if int64(d) >= cur || h.min.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Min returns the smallest recorded sample, or 0 if empty.
func (h *Histogram) Min() time.Duration {
	if h.Count() == 0 {
		return 0
	}
	return time.Duration(h.min.Load())
}

// Max returns the largest recorded sample, or 0 if empty.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Quantile returns the approximate q-quantile (0 <= q <= 1) of the
// recorded samples, or 0 if the histogram is empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= rank {
			up := histBucketUpper(i)
			if mx := h.Max(); up > mx {
				return mx
			}
			return up
		}
	}
	return h.Max()
}

// P95 returns the 95th-percentile sample, the paper's tail-latency metric.
func (h *Histogram) P95() time.Duration { return h.Quantile(0.95) }

// P50 returns the median sample.
func (h *Histogram) P50() time.Duration { return h.Quantile(0.50) }

// P99 returns the 99th-percentile sample.
func (h *Histogram) P99() time.Duration { return h.Quantile(0.99) }

// Merge adds other's samples into h.
func (h *Histogram) Merge(other *Histogram) {
	for i := range h.counts {
		h.counts[i].Add(other.counts[i].Load())
	}
	h.total.Add(other.total.Load())
	if other.Count() > 0 {
		h.Observe(other.Min())
		h.Observe(other.Max())
		h.total.Add(-2)
	}
}

// Reset clears all samples.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.total.Store(0)
	h.min.Store(math.MaxInt64)
	h.max.Store(0)
}

// Gauge holds an instantaneous value (e.g. live bytes, live windows).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta and returns the new value.
func (g *Gauge) Add(delta int64) int64 { return g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Ratio is a hit/miss style ratio tracker (prefetch hit ratio, Fig. 11b).
type Ratio struct {
	hit, miss Counter
}

// Hit records a success.
func (r *Ratio) Hit() { r.hit.Inc() }

// Miss records a failure.
func (r *Ratio) Miss() { r.miss.Inc() }

// Hits returns the success count.
func (r *Ratio) Hits() int64 { return r.hit.Load() }

// Misses returns the failure count.
func (r *Ratio) Misses() int64 { return r.miss.Load() }

// Value returns hits/(hits+misses), or 0 when empty.
func (r *Ratio) Value() float64 {
	h, m := r.hit.Load(), r.miss.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// Reset zeroes both counters.
func (r *Ratio) Reset() { r.hit.Reset(); r.miss.Reset() }

// Table renders aligned textual tables for experiment reports, matching
// the row/series structure of the paper's figures.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends one row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// FormatFloat renders a float compactly (3 significant decimals max).
func FormatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3f", v)
}

// SortRows orders rows lexicographically by the given column.
func (t *Table) SortRows(col int) {
	sort.SliceStable(t.rows, func(i, j int) bool { return t.rows[i][col] < t.rows[j][col] })
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", width[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range width {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}
