package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Errorf("Load = %d, want 42", got)
	}
	c.Reset()
	if got := c.Load(); got != 0 {
		t.Errorf("after Reset = %d, want 0", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 8000 {
		t.Errorf("Load = %d, want 8000", got)
	}
}

func TestBreakdownBuckets(t *testing.T) {
	var b Breakdown
	b.Observe(OpWrite, 10*time.Millisecond)
	b.Observe(OpWrite, 5*time.Millisecond)
	b.Observe(OpRead, 7*time.Millisecond)
	b.Observe(OpCompact, 3*time.Millisecond)
	b.Observe(OpIOWait, 100*time.Millisecond)

	if got := b.Total(OpWrite); got != 15*time.Millisecond {
		t.Errorf("write total = %v", got)
	}
	if got := b.Calls(OpWrite); got != 2 {
		t.Errorf("write calls = %d", got)
	}
	if got := b.StoreTotal(); got != 25*time.Millisecond {
		t.Errorf("StoreTotal = %v, want 25ms (io-wait excluded)", got)
	}
}

func TestBreakdownTimeAndStart(t *testing.T) {
	var b Breakdown
	b.Time(OpCompact, func() { time.Sleep(time.Millisecond) })
	stop := b.Start(OpRead)
	time.Sleep(time.Millisecond)
	stop()
	if b.Total(OpCompact) <= 0 || b.Total(OpRead) <= 0 {
		t.Error("timed regions recorded no duration")
	}
}

func TestBreakdownMergeResetBytes(t *testing.T) {
	var a, b Breakdown
	a.Observe(OpWrite, time.Second)
	a.AddBytesWritten(100)
	b.Observe(OpWrite, time.Second)
	b.AddBytesRead(50)
	a.Merge(&b)
	if a.Total(OpWrite) != 2*time.Second {
		t.Errorf("merged write = %v", a.Total(OpWrite))
	}
	if a.BytesRead() != 50 || a.BytesWritten() != 100 {
		t.Errorf("bytes = %d/%d", a.BytesRead(), a.BytesWritten())
	}
	a.Reset()
	if a.Total(OpWrite) != 0 || a.BytesRead() != 0 {
		t.Error("Reset left residue")
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{
		OpWrite: "write", OpRead: "read+delete", OpCompact: "compaction", OpIOWait: "io-wait",
	} {
		if op.String() != want {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), want)
		}
	}
	if !strings.Contains((&Breakdown{}).String(), "write=") {
		t.Error("Breakdown.String missing write bucket")
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		0:           "0B",
		512:         "512B",
		2048:        "2.0KiB",
		3 << 20:     "3.0MiB",
		5 << 30:     "5.0GiB",
		1536 * 1024: "1.5MiB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	// 100 samples: 1ms..100ms
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	p95 := h.P95()
	if p95 < 90*time.Millisecond || p95 > 100*time.Millisecond {
		t.Errorf("P95 = %v, want ~95ms", p95)
	}
	p50 := h.P50()
	if p50 < 45*time.Millisecond || p50 > 56*time.Millisecond {
		t.Errorf("P50 = %v, want ~50ms", p50)
	}
	if h.Min() != time.Millisecond {
		t.Errorf("Min = %v", h.Min())
	}
	if h.Max() != 100*time.Millisecond {
		t.Errorf("Max = %v", h.Max())
	}
	if h.Quantile(1.0) > h.Max() {
		t.Errorf("Quantile(1) = %v exceeds max %v", h.Quantile(1.0), h.Max())
	}
}

func TestHistogramRelativeError(t *testing.T) {
	h := NewHistogram()
	const sample = 12345 * time.Microsecond
	for i := 0; i < 1000; i++ {
		h.Observe(sample)
	}
	got := h.P95()
	relErr := math.Abs(float64(got-sample)) / float64(sample)
	if relErr > 0.05 {
		t.Errorf("P95 = %v for constant %v: rel err %.3f > 5%%", got, sample, relErr)
	}
}

func TestHistogramEmptyAndReset(t *testing.T) {
	h := NewHistogram()
	if h.P95() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("empty histogram should report zeros")
	}
	h.Observe(time.Second)
	h.Reset()
	if h.Count() != 0 || h.P95() != 0 {
		t.Error("Reset left residue")
	}
}

func TestHistogramExtremes(t *testing.T) {
	h := NewHistogram()
	h.Observe(0)                  // below floor
	h.Observe(2000 * time.Second) // above ceiling
	if h.Count() != 2 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Max() != 2000*time.Second {
		t.Errorf("Max = %v", h.Max())
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 0; i < 50; i++ {
		a.Observe(time.Millisecond)
		b.Observe(time.Second)
	}
	a.Merge(b)
	if a.Count() != 100 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if p95 := a.P95(); p95 < 900*time.Millisecond {
		t.Errorf("merged P95 = %v, want ~1s", p95)
	}
	if a.Min() != time.Millisecond {
		t.Errorf("merged Min = %v", a.Min())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	if g.Add(5) != 15 || g.Load() != 15 {
		t.Errorf("gauge = %d", g.Load())
	}
}

func TestRatio(t *testing.T) {
	var r Ratio
	if r.Value() != 0 {
		t.Error("empty ratio should be 0")
	}
	for i := 0; i < 93; i++ {
		r.Hit()
	}
	for i := 0; i < 7; i++ {
		r.Miss()
	}
	if v := r.Value(); math.Abs(v-0.93) > 1e-9 {
		t.Errorf("Value = %v, want 0.93", v)
	}
	if r.Hits() != 93 || r.Misses() != 7 {
		t.Errorf("hits/misses = %d/%d", r.Hits(), r.Misses())
	}
	r.Reset()
	if r.Value() != 0 {
		t.Error("Reset left residue")
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("query", "store", "throughput")
	tb.AddRow("Q7", "flowkv", 123.456)
	tb.AddRow("Q7", "rocksdb", 61.0)
	out := tb.String()
	if !strings.Contains(out, "query") || !strings.Contains(out, "123.456") || !strings.Contains(out, "61") {
		t.Errorf("table output missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines, want 4", len(lines))
	}
	tb.SortRows(1)
	if !strings.Contains(tb.String(), "flowkv") {
		t.Error("SortRows lost rows")
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i%1000) * time.Microsecond)
	}
}

func BenchmarkBreakdownObserve(b *testing.B) {
	var bd Breakdown
	for i := 0; i < b.N; i++ {
		bd.Observe(OpWrite, time.Microsecond)
	}
}
