// Package nexmark implements the NEXMark benchmark workload used by the
// paper's evaluation (§6): a stream of online-auction events — Person,
// Auction, Bid — produced by a deterministic generator with the Apache
// Beam generator's event mix (2% persons, 6% auctions, 92% bids, i.e.
// 1:3:46 out of every 50 events) and monotonically increasing event
// timestamps.
package nexmark

import (
	"fmt"
	"math/rand"

	"flowkv/internal/binio"
)

// EventKind discriminates the three NEXMark event types.
type EventKind byte

// Event kinds.
const (
	KindPerson EventKind = iota + 1
	KindAuction
	KindBid
)

// String returns the event-kind name.
func (k EventKind) String() string {
	switch k {
	case KindPerson:
		return "person"
	case KindAuction:
		return "auction"
	case KindBid:
		return "bid"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Person is a new account registration.
type Person struct {
	// ID is the person's unique identifier.
	ID int64
	// Name and City are synthetic attributes.
	Name string
	City string
	// DateTime is the event time in milliseconds.
	DateTime int64
}

// Auction is a new auction listing.
type Auction struct {
	// ID is the auction's unique identifier.
	ID int64
	// Seller references the Person who opened the auction.
	Seller int64
	// Category is the item category.
	Category int64
	// InitialBid is the opening price.
	InitialBid int64
	// DateTime is the event time in milliseconds.
	DateTime int64
}

// Bid is one bid on an auction.
type Bid struct {
	// Auction references the Auction bid on.
	Auction int64
	// Bidder references the bidding Person.
	Bidder int64
	// Price is the bid price.
	Price int64
	// DateTime is the event time in milliseconds.
	DateTime int64
}

// Event is the union of the three event types; exactly one field is set
// according to Kind.
type Event struct {
	Kind    EventKind
	Person  *Person
	Auction *Auction
	Bid     *Bid
}

// Time returns the event's timestamp.
func (e Event) Time() int64 {
	switch e.Kind {
	case KindPerson:
		return e.Person.DateTime
	case KindAuction:
		return e.Auction.DateTime
	default:
		return e.Bid.DateTime
	}
}

// Encode serializes the event compactly (the paper reports ~16 B persons
// and auctions, ~84 B bids; ours are of the same order).
func (e Event) Encode() []byte {
	b := []byte{byte(e.Kind)}
	switch e.Kind {
	case KindPerson:
		p := e.Person
		b = binio.PutVarint(b, p.ID)
		b = binio.PutString(b, p.Name)
		b = binio.PutString(b, p.City)
		b = binio.PutVarint(b, p.DateTime)
	case KindAuction:
		a := e.Auction
		b = binio.PutVarint(b, a.ID)
		b = binio.PutVarint(b, a.Seller)
		b = binio.PutVarint(b, a.Category)
		b = binio.PutVarint(b, a.InitialBid)
		b = binio.PutVarint(b, a.DateTime)
	case KindBid:
		bid := e.Bid
		b = binio.PutVarint(b, bid.Auction)
		b = binio.PutVarint(b, bid.Bidder)
		b = binio.PutVarint(b, bid.Price)
		b = binio.PutVarint(b, bid.DateTime)
	}
	return b
}

// DecodeEvent parses an event serialized by Encode.
func DecodeEvent(b []byte) (Event, error) {
	if len(b) == 0 {
		return Event{}, binio.ErrShortBuffer
	}
	kind := EventKind(b[0])
	b = b[1:]
	readVarint := func() (int64, error) {
		v, n, err := binio.Varint(b)
		b = b[n:]
		return v, err
	}
	readString := func() (string, error) {
		s, n, err := binio.String(b)
		b = b[n:]
		return s, err
	}
	switch kind {
	case KindPerson:
		var p Person
		var err error
		if p.ID, err = readVarint(); err != nil {
			return Event{}, err
		}
		if p.Name, err = readString(); err != nil {
			return Event{}, err
		}
		if p.City, err = readString(); err != nil {
			return Event{}, err
		}
		if p.DateTime, err = readVarint(); err != nil {
			return Event{}, err
		}
		return Event{Kind: KindPerson, Person: &p}, nil
	case KindAuction:
		var a Auction
		var err error
		for _, dst := range []*int64{&a.ID, &a.Seller, &a.Category, &a.InitialBid, &a.DateTime} {
			if *dst, err = readVarint(); err != nil {
				return Event{}, err
			}
		}
		return Event{Kind: KindAuction, Auction: &a}, nil
	case KindBid:
		var bid Bid
		var err error
		for _, dst := range []*int64{&bid.Auction, &bid.Bidder, &bid.Price, &bid.DateTime} {
			if *dst, err = readVarint(); err != nil {
				return Event{}, err
			}
		}
		return Event{Kind: KindBid, Bid: &bid}, nil
	default:
		return Event{}, fmt.Errorf("nexmark: unknown event kind %d", kind)
	}
}

// Beam generator proportions: out of every 50 events, 1 person, 3
// auctions, 46 bids.
const (
	proportionTotal   = 50
	personProportion  = 1
	auctionProportion = 3
)

// GeneratorConfig parameterizes the deterministic event generator.
type GeneratorConfig struct {
	// Events is the total number of events to produce.
	Events int
	// InterEventMs is the event-time gap between consecutive events
	// (event rate = 1000/InterEventMs events per event-time second).
	// Default 1.
	InterEventMs int64
	// FirstEventTS offsets all timestamps. Default 0.
	FirstEventTS int64
	// Seed makes runs reproducible. Default 1.
	Seed int64
	// HotAuctionRatio is the share of bids (in percent) that target one
	// of the 10 most recent auctions, the Beam generator's skew model.
	// Default 50.
	HotAuctionRatio int
	// HotBidderRatio is the share of bids (in percent) made by one of
	// the 10 most recent persons. Default 25.
	HotBidderRatio int
	// ExtraBidderKeys widens the bidder key space by drawing cold
	// bidders from [0, persons*ExtraBidderKeys). Default 1.
	ExtraBidderKeys int
}

func (c *GeneratorConfig) fill() {
	if c.InterEventMs <= 0 {
		c.InterEventMs = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.HotAuctionRatio <= 0 {
		c.HotAuctionRatio = 50
	}
	if c.HotBidderRatio <= 0 {
		c.HotBidderRatio = 25
	}
	if c.ExtraBidderKeys <= 0 {
		c.ExtraBidderKeys = 1
	}
}

// Generator deterministically produces NEXMark events in timestamp order.
type Generator struct {
	cfg GeneratorConfig
	rng *rand.Rand
	i   int
}

// NewGenerator returns a generator for the given configuration.
func NewGenerator(cfg GeneratorConfig) *Generator {
	cfg.fill()
	return &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Remaining returns the number of events left to generate.
func (g *Generator) Remaining() int { return g.cfg.Events - g.i }

// Next produces the next event; ok is false when the configured number of
// events has been generated.
func (g *Generator) Next() (Event, bool) {
	if g.i >= g.cfg.Events {
		return Event{}, false
	}
	i := g.i
	g.i++
	ts := g.cfg.FirstEventTS + int64(i)*g.cfg.InterEventMs
	slot := i % proportionTotal
	epoch := int64(i / proportionTotal)
	switch {
	case slot < personProportion:
		id := epoch*personProportion + int64(slot)
		return Event{Kind: KindPerson, Person: &Person{
			ID:       id,
			Name:     fmt.Sprintf("person-%d", id),
			City:     cities[g.rng.Intn(len(cities))],
			DateTime: ts,
		}}, true
	case slot < personProportion+auctionProportion:
		id := epoch*auctionProportion + int64(slot-personProportion)
		seller := g.pickPerson(epoch)
		return Event{Kind: KindAuction, Auction: &Auction{
			ID:         id,
			Seller:     seller,
			Category:   int64(g.rng.Intn(5)),
			InitialBid: int64(1 + g.rng.Intn(100)),
			DateTime:   ts,
		}}, true
	default:
		return Event{Kind: KindBid, Bid: &Bid{
			Auction:  g.pickAuction(epoch),
			Bidder:   g.pickBidder(epoch),
			Price:    int64(100 + g.rng.Intn(10_000)),
			DateTime: ts,
		}}, true
	}
}

// Offset returns the number of events generated so far — the position
// SeekTo needs to reproduce the current read point.
func (g *Generator) Offset() int64 { return int64(g.i) }

// SeekTo repositions the generator so the next event produced is the
// off'th of the configured stream. The generator is deterministic, so
// seeking rewinds to the initial state and replays; the repositioned
// stream is identical to the original in either direction — which is
// what lets a resumed pipeline replay exactly the events that followed
// its last committed checkpoint.
func (g *Generator) SeekTo(off int64) error {
	if off < 0 || off > int64(g.cfg.Events) {
		return fmt.Errorf("nexmark: seek %d out of range [0,%d]", off, g.cfg.Events)
	}
	g.rng = rand.New(rand.NewSource(g.cfg.Seed))
	g.i = 0
	for int64(g.i) < off {
		if _, ok := g.Next(); !ok {
			break
		}
	}
	return nil
}

// All drains the generator into a slice.
func (g *Generator) All() []Event {
	out := make([]Event, 0, g.Remaining())
	for {
		ev, ok := g.Next()
		if !ok {
			return out
		}
		out = append(out, ev)
	}
}

func (g *Generator) pickPerson(epoch int64) int64 {
	max := epoch*personProportion + 1
	return g.rng.Int63n(max)
}

func (g *Generator) pickAuction(epoch int64) int64 {
	max := epoch*auctionProportion + 1
	if g.rng.Intn(100) < g.cfg.HotAuctionRatio {
		// One of the ~10 most recent auctions.
		lo := max - 10
		if lo < 0 {
			lo = 0
		}
		return lo + g.rng.Int63n(max-lo)
	}
	return g.rng.Int63n(max)
}

func (g *Generator) pickBidder(epoch int64) int64 {
	max := epoch*personProportion + 1
	if g.rng.Intn(100) < g.cfg.HotBidderRatio {
		lo := max - 10
		if lo < 0 {
			lo = 0
		}
		return lo + g.rng.Int63n(max-lo)
	}
	return g.rng.Int63n(max * int64(g.cfg.ExtraBidderKeys))
}

var cities = []string{
	"Seoul", "Rome", "Boston", "Tokyo", "Berlin", "Lagos", "Lima", "Oslo",
}
