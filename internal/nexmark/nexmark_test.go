package nexmark

import (
	"testing"
	"testing/quick"
)

func TestEventMixProportions(t *testing.T) {
	g := NewGenerator(GeneratorConfig{Events: 50_000})
	var persons, auctions, bids int
	for {
		ev, ok := g.Next()
		if !ok {
			break
		}
		switch ev.Kind {
		case KindPerson:
			persons++
		case KindAuction:
			auctions++
		case KindBid:
			bids++
		}
	}
	// Paper §6: 2% persons, 6% auctions, 92% bids.
	if persons != 1000 || auctions != 3000 || bids != 46000 {
		t.Errorf("mix = %d/%d/%d, want 1000/3000/46000", persons, auctions, bids)
	}
}

func TestTimestampsMonotonic(t *testing.T) {
	g := NewGenerator(GeneratorConfig{Events: 10_000, InterEventMs: 3})
	var prev int64 = -1
	for {
		ev, ok := g.Next()
		if !ok {
			break
		}
		if ev.Time() <= prev {
			t.Fatalf("timestamp regression: %d after %d", ev.Time(), prev)
		}
		prev = ev.Time()
	}
	if want := int64(9999 * 3); prev != want {
		t.Errorf("final ts = %d, want %d", prev, want)
	}
}

func TestDeterminism(t *testing.T) {
	a := NewGenerator(GeneratorConfig{Events: 5000, Seed: 7}).All()
	b := NewGenerator(GeneratorConfig{Events: 5000, Seed: 7}).All()
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		ea, eb := a[i].Encode(), b[i].Encode()
		if string(ea) != string(eb) {
			t.Fatalf("event %d differs across runs with the same seed", i)
		}
	}
	c := NewGenerator(GeneratorConfig{Events: 5000, Seed: 8}).All()
	var diff int
	for i := range a {
		if string(a[i].Encode()) != string(c[i].Encode()) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical streams")
	}
}

func TestReferencesAreValid(t *testing.T) {
	g := NewGenerator(GeneratorConfig{Events: 50_000})
	var maxPerson, maxAuction int64 = -1, -1
	for {
		ev, ok := g.Next()
		if !ok {
			break
		}
		switch ev.Kind {
		case KindPerson:
			if ev.Person.ID > maxPerson {
				maxPerson = ev.Person.ID
			}
		case KindAuction:
			if ev.Auction.ID > maxAuction {
				maxAuction = ev.Auction.ID
			}
			if ev.Auction.Seller < 0 || ev.Auction.Seller > maxPerson+1 {
				t.Fatalf("auction seller %d out of range (persons <= %d)", ev.Auction.Seller, maxPerson)
			}
		case KindBid:
			if ev.Bid.Auction < 0 || ev.Bid.Auction > maxAuction+1 {
				t.Fatalf("bid auction %d out of range (auctions <= %d)", ev.Bid.Auction, maxAuction)
			}
			if ev.Bid.Price <= 0 {
				t.Fatal("non-positive bid price")
			}
		}
	}
}

func TestHotKeySkew(t *testing.T) {
	g := NewGenerator(GeneratorConfig{Events: 100_000, HotAuctionRatio: 80})
	counts := make(map[int64]int)
	var bids, maxAuction int64
	for {
		ev, ok := g.Next()
		if !ok {
			break
		}
		if ev.Kind == KindAuction && ev.Auction.ID > maxAuction {
			maxAuction = ev.Auction.ID
		}
		if ev.Kind == KindBid {
			counts[ev.Bid.Auction]++
			bids++
		}
	}
	// With 80% hot ratio the most-bid auctions must be far above the
	// uniform expectation.
	uniform := float64(bids) / float64(maxAuction+1)
	var hottest int
	for _, c := range counts {
		if c > hottest {
			hottest = c
		}
	}
	if float64(hottest) < 5*uniform {
		t.Errorf("hottest auction has %d bids; uniform expectation %.1f — skew model missing", hottest, uniform)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	g := NewGenerator(GeneratorConfig{Events: 1000})
	for {
		ev, ok := g.Next()
		if !ok {
			break
		}
		dec, err := DecodeEvent(ev.Encode())
		if err != nil {
			t.Fatal(err)
		}
		if dec.Kind != ev.Kind || dec.Time() != ev.Time() {
			t.Fatalf("round trip mismatch: %v vs %v", dec, ev)
		}
		switch ev.Kind {
		case KindPerson:
			if *dec.Person != *ev.Person {
				t.Fatalf("person mismatch: %+v vs %+v", dec.Person, ev.Person)
			}
		case KindAuction:
			if *dec.Auction != *ev.Auction {
				t.Fatalf("auction mismatch: %+v vs %+v", dec.Auction, ev.Auction)
			}
		case KindBid:
			if *dec.Bid != *ev.Bid {
				t.Fatalf("bid mismatch: %+v vs %+v", dec.Bid, ev.Bid)
			}
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeEvent(nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := DecodeEvent([]byte{99, 1, 2, 3}); err == nil {
		t.Error("unknown kind accepted")
	}
	ev := Event{Kind: KindBid, Bid: &Bid{Auction: 1, Bidder: 2, Price: 3, DateTime: 4}}
	b := ev.Encode()
	if _, err := DecodeEvent(b[:2]); err == nil {
		t.Error("truncated event accepted")
	}
}

func TestQuickBidEncode(t *testing.T) {
	f := func(auction, bidder, price, ts int64) bool {
		ev := Event{Kind: KindBid, Bid: &Bid{Auction: auction, Bidder: bidder, Price: price, DateTime: ts}}
		dec, err := DecodeEvent(ev.Encode())
		return err == nil && *dec.Bid == *ev.Bid
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBidSizeOrder(t *testing.T) {
	// The paper reports ~84 B serialized bids; ours must be the same
	// order of magnitude (small varint-packed records).
	ev := Event{Kind: KindBid, Bid: &Bid{Auction: 1 << 20, Bidder: 1 << 18, Price: 9999, DateTime: 1 << 40}}
	if n := len(ev.Encode()); n < 8 || n > 100 {
		t.Errorf("bid encodes to %d bytes", n)
	}
}

func TestAllAndRemaining(t *testing.T) {
	g := NewGenerator(GeneratorConfig{Events: 100})
	if g.Remaining() != 100 {
		t.Errorf("Remaining = %d", g.Remaining())
	}
	g.Next()
	evs := g.All()
	if len(evs) != 99 {
		t.Errorf("All after one Next = %d events", len(evs))
	}
	if _, ok := g.Next(); ok {
		t.Error("generator not exhausted")
	}
}

func BenchmarkGenerator(b *testing.B) {
	g := NewGenerator(GeneratorConfig{Events: 1 << 31})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := g.Next(); !ok {
			b.Fatal("exhausted")
		}
	}
}
