// Package queries implements the eight NEXMark queries of the paper's
// evaluation (§6, "Workload"), as pipelines over the mini SPE. Each query
// is listed with its window operations and the store pattern they induce:
//
//	Q5         bid counts per auction in sliding windows (RMW) feeding a
//	           consecutive windowed max (RMW)
//	Q5-Append  same counts (RMW) but the max found without incremental
//	           aggregation (AAR)
//	Q7         highest bid per bidder in fixed windows, append enforced
//	           by side inputs (AAR)
//	Q7-Session Q7 with the fixed window replaced by a session window (AUR)
//	Q8         new users who created an auction in the same fixed window —
//	           a windowed join (AAR)
//	Q11        bid count per bidder in session windows (RMW)
//	Q11-Median Q11 with the count replaced by a non-associative median (AUR)
//	Q12        bid count per bidder in a single global window (RMW)
//
// The remaining NEXMark queries are excluded for the paper's reasons:
// stateless (Q0-Q2), no window state (Q3), custom windows FlowKV cannot
// classify (Q4, Q6, Q9), or pathological trigger overhead (Q10).
package queries

import (
	"fmt"
	"path/filepath"
	"sort"
	"strconv"

	"flowkv/internal/binio"
	"flowkv/internal/core"
	"flowkv/internal/faster"
	"flowkv/internal/lsm"
	"flowkv/internal/memstore"
	"flowkv/internal/metrics"
	"flowkv/internal/nexmark"
	"flowkv/internal/spe"
	"flowkv/internal/statebackend"
	"flowkv/internal/window"
)

// Config parameterizes a query build.
type Config struct {
	// Backend selects the state store under test.
	Backend statebackend.Kind
	// BaseDir roots each worker's private state directory.
	BaseDir string
	// Parallelism is the per-stage worker count. Default 2.
	Parallelism int
	// WindowMs is the window size for fixed/sliding windows and the
	// session gap for session windows. Default 10_000.
	WindowMs int64
	// FlowKV, LSM, Faster, Mem pass tuning overrides to the backend.
	FlowKV core.Options
	LSM    lsm.Options
	Faster faster.Options
	Mem    memstore.Options
	// Breakdown receives store CPU-time and I/O accounting.
	Breakdown *metrics.Breakdown
	// ChannelDepth and WatermarkEvery tune the SPE runtime.
	ChannelDepth   int
	WatermarkEvery int
}

func (c *Config) fill() {
	if c.Parallelism <= 0 {
		c.Parallelism = 2
	}
	if c.WindowMs <= 0 {
		c.WindowMs = 10_000
	}
}

// Query is a built NEXMark query: the pipeline plus the event adapter
// that turns generator events into keyed tuples for stage 0.
type Query struct {
	// Name is the query name (e.g. "Q7-Session").
	Name string
	// Pipeline is the SPE dataflow.
	Pipeline *spe.Pipeline
	// Adapt converts one event into zero or more input tuples.
	Adapt func(ev nexmark.Event, emit func(spe.Tuple))
}

// Source returns an SPE source replaying the given events through the
// query's adapter.
func (q *Query) Source(events []nexmark.Event) spe.Source {
	return func(emit func(spe.Tuple)) {
		for _, ev := range events {
			q.Adapt(ev, emit)
		}
	}
}

// Names lists the evaluated queries in the paper's order.
func Names() []string {
	return []string{"Q5", "Q5-Append", "Q7", "Q7-Session", "Q8", "Q11", "Q11-Median", "Q12"}
}

// PatternOf returns the store access pattern a query exercises, as the
// paper labels it (mixed queries report "RMW+AAR" etc.).
func PatternOf(name string) string {
	switch name {
	case "Q5":
		return "RMW+RMW"
	case "Q5-Append":
		return "RMW+AAR"
	case "Q7", "Q8":
		return "AAR"
	case "Q7-Session", "Q11-Median":
		return "AUR"
	case "Q11", "Q12":
		return "RMW"
	default:
		return "?"
	}
}

// Build constructs the named query for the given configuration.
func Build(name string, cfg Config) (*Query, error) {
	cfg.fill()
	switch name {
	case "Q5":
		return buildQ5(cfg, false)
	case "Q5-Append":
		return buildQ5(cfg, true)
	case "Q7":
		return buildQ7(cfg, false)
	case "Q7-Session":
		return buildQ7(cfg, true)
	case "Q8":
		return buildQ8(cfg)
	case "Q11":
		return buildQ11(cfg)
	case "Q11-Median":
		return buildQ11Median(cfg)
	case "Q12":
		return buildQ12(cfg)
	default:
		return nil, fmt.Errorf("queries: unknown query %q", name)
	}
}

// backendFactory returns a per-worker backend constructor for one stage.
func backendFactory(cfg Config, stage string, agg core.AggKind, a window.Assigner) func(int) (statebackend.Backend, error) {
	return func(worker int) (statebackend.Backend, error) {
		return statebackend.Open(statebackend.Config{
			Kind:       cfg.Backend,
			Dir:        filepath.Join(cfg.BaseDir, stage, fmt.Sprintf("worker-%02d", worker)),
			Agg:        agg,
			WindowKind: a.Kind(),
			Assigner:   a,
			FlowKV:     cfg.FlowKV,
			LSM:        cfg.LSM,
			Faster:     cfg.Faster,
			Mem:        cfg.Mem,
			Breakdown:  cfg.Breakdown,
		})
	}
}

func pipeline(cfg Config, stages ...spe.Stage) *spe.Pipeline {
	return &spe.Pipeline{
		Stages:         stages,
		ChannelDepth:   cfg.ChannelDepth,
		WatermarkEvery: cfg.WatermarkEvery,
	}
}

// ---- value encodings ----

func keyOf(id int64) []byte { return strconv.AppendInt(nil, id, 10) }

func encPrice(p int64) []byte { return binio.PutVarint(nil, p) }

func decPrice(v []byte) int64 {
	p, _, err := binio.Varint(v)
	if err != nil {
		return 0
	}
	return p
}

// encAuctionCount packs (auction, count) for Q5's second stage.
func encAuctionCount(auction, count int64) []byte {
	b := binio.PutVarint(nil, auction)
	return binio.PutVarint(b, count)
}

func decAuctionCount(v []byte) (auction, count int64) {
	a, n, err := binio.Varint(v)
	if err != nil {
		return 0, 0
	}
	c, _, err := binio.Varint(v[n:])
	if err != nil {
		return a, 0
	}
	return a, c
}

// ---- aggregate functions ----

// countAgg counts tuples incrementally (associative & commutative: RMW).
var countAgg = spe.IncrementalFunc{
	AddFunc: func(acc []byte, _ spe.Tuple) []byte {
		var c int64
		if acc != nil {
			c = decPrice(acc)
		}
		return binio.PutVarint(nil, c+1)
	},
	MergeFunc: func(a, b []byte) []byte {
		return binio.PutVarint(nil, decPrice(a)+decPrice(b))
	},
}

// maxPriceHolistic finds the highest of the appended bid prices; the
// window state holds the full bid list (Append pattern).
var maxPriceHolistic = spe.HolisticFunc(func(_ []byte, values [][]byte) []byte {
	if len(values) == 0 {
		return nil
	}
	max := decPrice(values[0])
	for _, v := range values[1:] {
		if p := decPrice(v); p > max {
			max = p
		}
	}
	return encPrice(max)
})

// medianPriceHolistic computes the median bid price, the paper's
// non-associative aggregate (Q11-Median).
var medianPriceHolistic = spe.HolisticFunc(func(_ []byte, values [][]byte) []byte {
	if len(values) == 0 {
		return nil
	}
	prices := make([]int64, len(values))
	for i, v := range values {
		prices[i] = decPrice(v)
	}
	sort.Slice(prices, func(i, j int) bool { return prices[i] < prices[j] })
	n := len(prices)
	med := prices[n/2]
	if n%2 == 0 {
		med = (prices[n/2-1] + prices[n/2]) / 2
	}
	return encPrice(med)
})

// betterAuctionCount orders (auction, count) pairs by count descending
// with auction id ascending as the tie-break, so the Q5 winner is
// deterministic regardless of worker interleaving.
func betterAuctionCount(a, b []byte) []byte {
	aa, ca := decAuctionCount(a)
	ab, cb := decAuctionCount(b)
	if cb > ca || (cb == ca && ab < aa) {
		return b
	}
	return a
}

// maxAuctionCountAgg keeps the (auction, count) pair with the highest
// count (incremental max: RMW).
var maxAuctionCountAgg = spe.IncrementalFunc{
	AddFunc: func(acc []byte, t spe.Tuple) []byte {
		if acc == nil {
			return append([]byte(nil), t.Value...)
		}
		return append([]byte(nil), betterAuctionCount(acc, t.Value)...)
	},
	MergeFunc: func(a, b []byte) []byte {
		return betterAuctionCount(a, b)
	},
}

// maxAuctionCountHolistic finds the same winner over the full pair list
// (no incremental aggregation: AAR — Q5-Append's second stage).
var maxAuctionCountHolistic = spe.HolisticFunc(func(_ []byte, values [][]byte) []byte {
	if len(values) == 0 {
		return nil
	}
	best := values[0]
	for _, v := range values[1:] {
		best = betterAuctionCount(best, v)
	}
	return append([]byte(nil), best...)
})

// ---- event adapters ----

func bidsByAuction(ev nexmark.Event, emit func(spe.Tuple)) {
	if ev.Kind != nexmark.KindBid {
		return
	}
	emit(spe.Tuple{Key: keyOf(ev.Bid.Auction), Value: encPrice(ev.Bid.Price), TS: ev.Bid.DateTime})
}

func bidsByBidder(ev nexmark.Event, emit func(spe.Tuple)) {
	if ev.Kind != nexmark.KindBid {
		return
	}
	emit(spe.Tuple{Key: keyOf(ev.Bid.Bidder), Value: encPrice(ev.Bid.Price), TS: ev.Bid.DateTime})
}

// ---- queries ----

// buildQ5 counts bids per auction in sliding windows (RMW), then finds
// the auction with the most bids in a consecutive window operation —
// incrementally for Q5 (RMW), holistically for Q5-Append (AAR).
func buildQ5(cfg Config, appendVariant bool) (*Query, error) {
	slide := cfg.WindowMs / 2
	if slide <= 0 {
		slide = 1
	}
	countAssigner := window.SlidingAssigner{Size: cfg.WindowMs, Slide: slide}
	maxAssigner := window.FixedAssigner{Size: slide}

	countStage := spe.Stage{
		Name:        "count-bids",
		Parallelism: cfg.Parallelism,
		Window: &spe.OperatorSpec{
			Assigner:    countAssigner,
			Incremental: countAgg,
		},
		NewBackend: backendFactory(cfg, "count-bids", core.AggIncremental, countAssigner),
	}
	rekey := spe.Stage{
		Name:        "rekey",
		Parallelism: 1,
		Map: func(t spe.Tuple, emit func(spe.Tuple)) {
			auction, err := strconv.ParseInt(string(t.Key), 10, 64)
			if err != nil {
				return
			}
			count := decPrice(t.Value)
			emit(spe.Tuple{
				Key:    []byte("all"),
				Value:  encAuctionCount(auction, count),
				TS:     t.TS,
				WallNS: t.WallNS,
			})
		},
	}
	maxStage := spe.Stage{
		Name:        "max-auction",
		Parallelism: 1, // single logical key
	}
	if appendVariant {
		maxStage.Window = &spe.OperatorSpec{Assigner: maxAssigner, Holistic: maxAuctionCountHolistic}
		maxStage.NewBackend = backendFactory(cfg, "max-auction", core.AggHolistic, maxAssigner)
	} else {
		maxStage.Window = &spe.OperatorSpec{Assigner: maxAssigner, Incremental: maxAuctionCountAgg}
		maxStage.NewBackend = backendFactory(cfg, "max-auction", core.AggIncremental, maxAssigner)
	}
	name := "Q5"
	if appendVariant {
		name = "Q5-Append"
	}
	return &Query{
		Name:     name,
		Pipeline: pipeline(cfg, countStage, rekey, maxStage),
		Adapt:    bidsByAuction,
	}, nil
}

// buildQ7 finds the highest bid per bidder within fixed windows (AAR) —
// the paper notes its side inputs enforce the append pattern — or within
// session windows for Q7-Session (AUR).
func buildQ7(cfg Config, sessionVariant bool) (*Query, error) {
	var assigner window.Assigner = window.FixedAssigner{Size: cfg.WindowMs}
	name := "Q7"
	if sessionVariant {
		assigner = window.SessionAssigner{Gap: cfg.WindowMs}
		name = "Q7-Session"
	}
	stage := spe.Stage{
		Name:        "max-bid",
		Parallelism: cfg.Parallelism,
		Window: &spe.OperatorSpec{
			Assigner: assigner,
			Holistic: maxPriceHolistic,
		},
		NewBackend: backendFactory(cfg, "max-bid", core.AggHolistic, assigner),
	}
	return &Query{Name: name, Pipeline: pipeline(cfg, stage), Adapt: bidsByBidder}, nil
}

// buildQ8 monitors users who registered and opened an auction within the
// same fixed window: a windowed join of the person and auction streams
// keyed by person (AAR).
func buildQ8(cfg Config) (*Query, error) {
	assigner := window.FixedAssigner{Size: cfg.WindowMs}
	join := spe.HolisticFunc(func(key []byte, values [][]byte) []byte {
		var persons, auctions int
		for _, v := range values {
			if len(v) == 0 {
				continue
			}
			switch v[0] {
			case 'P':
				persons++
			case 'A':
				auctions++
			}
		}
		if persons > 0 && auctions > 0 {
			return []byte(fmt.Sprintf("new-seller:%s", key))
		}
		return nil
	})
	stage := spe.Stage{
		Name:        "join",
		Parallelism: cfg.Parallelism,
		Window: &spe.OperatorSpec{
			Assigner: assigner,
			Holistic: join,
		},
		NewBackend: backendFactory(cfg, "join", core.AggHolistic, assigner),
	}
	adapt := func(ev nexmark.Event, emit func(spe.Tuple)) {
		switch ev.Kind {
		case nexmark.KindPerson:
			emit(spe.Tuple{Key: keyOf(ev.Person.ID), Value: []byte{'P'}, TS: ev.Person.DateTime})
		case nexmark.KindAuction:
			emit(spe.Tuple{Key: keyOf(ev.Auction.Seller), Value: []byte{'A'}, TS: ev.Auction.DateTime})
		}
	}
	return &Query{Name: "Q8", Pipeline: pipeline(cfg, stage), Adapt: adapt}, nil
}

// buildQ11 counts bids per bidder within session windows (RMW).
func buildQ11(cfg Config) (*Query, error) {
	assigner := window.SessionAssigner{Gap: cfg.WindowMs}
	stage := spe.Stage{
		Name:        "session-count",
		Parallelism: cfg.Parallelism,
		Window: &spe.OperatorSpec{
			Assigner:    assigner,
			Incremental: countAgg,
		},
		NewBackend: backendFactory(cfg, "session-count", core.AggIncremental, assigner),
	}
	return &Query{Name: "Q11", Pipeline: pipeline(cfg, stage), Adapt: bidsByBidder}, nil
}

// buildQ11Median replaces Q11's count with the non-associative median
// (AUR).
func buildQ11Median(cfg Config) (*Query, error) {
	assigner := window.SessionAssigner{Gap: cfg.WindowMs}
	stage := spe.Stage{
		Name:        "session-median",
		Parallelism: cfg.Parallelism,
		Window: &spe.OperatorSpec{
			Assigner: assigner,
			Holistic: medianPriceHolistic,
		},
		NewBackend: backendFactory(cfg, "session-median", core.AggHolistic, assigner),
	}
	return &Query{Name: "Q11-Median", Pipeline: pipeline(cfg, stage), Adapt: bidsByBidder}, nil
}

// buildQ12 counts bids per bidder within a single global window (RMW).
func buildQ12(cfg Config) (*Query, error) {
	assigner := window.GlobalAssigner{}
	stage := spe.Stage{
		Name:        "global-count",
		Parallelism: cfg.Parallelism,
		Window: &spe.OperatorSpec{
			Assigner:    assigner,
			Incremental: countAgg,
		},
		NewBackend: backendFactory(cfg, "global-count", core.AggIncremental, assigner),
	}
	return &Query{Name: "Q12", Pipeline: pipeline(cfg, stage), Adapt: bidsByBidder}, nil
}
