package queries

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"flowkv/internal/nexmark"
	"flowkv/internal/spe"
	"flowkv/internal/statebackend"
)

func testEvents(t testing.TB, n int) []nexmark.Event {
	t.Helper()
	return nexmark.NewGenerator(nexmark.GeneratorConfig{
		Events:       n,
		InterEventMs: 10,
		Seed:         42,
	}).All()
}

func runQuery(t *testing.T, name string, kind statebackend.Kind, events []nexmark.Event) (*spe.RunResult, []spe.Tuple) {
	t.Helper()
	q, err := Build(name, Config{
		Backend:        kind,
		BaseDir:        filepath.Join(t.TempDir(), name, string(kind)),
		Parallelism:    2,
		WindowMs:       5_000,
		WatermarkEvery: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var out []spe.Tuple
	res, err := spe.Run(q.Pipeline, q.Source(events), func(tp spe.Tuple) {
		mu.Lock()
		out = append(out, tp)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, out
}

func TestBuildUnknown(t *testing.T) {
	if _, err := Build("Q99", Config{}); err == nil {
		t.Error("unknown query accepted")
	}
}

func TestNamesAndPatterns(t *testing.T) {
	names := Names()
	if len(names) != 8 {
		t.Fatalf("%d queries, want 8", len(names))
	}
	wantPatterns := map[string]string{
		"Q5": "RMW+RMW", "Q5-Append": "RMW+AAR", "Q7": "AAR", "Q7-Session": "AUR",
		"Q8": "AAR", "Q11": "RMW", "Q11-Median": "AUR", "Q12": "RMW",
	}
	for _, n := range names {
		if PatternOf(n) != wantPatterns[n] {
			t.Errorf("PatternOf(%s) = %s, want %s", n, PatternOf(n), wantPatterns[n])
		}
	}
	if PatternOf("nope") != "?" {
		t.Error("unknown pattern")
	}
}

// TestAllQueriesAllBackendsAgree is the repository's core end-to-end
// correctness check: every NEXMark query must produce the same result
// multiset on every backend (the in-memory store is the reference).
func TestAllQueriesAllBackendsAgree(t *testing.T) {
	events := testEvents(t, 20_000)
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			var reference map[string]int
			for _, kind := range statebackend.Kinds() {
				t.Run(string(kind), func(t *testing.T) {
					res, out := runQuery(t, name, kind, events)
					if res.TuplesIn == 0 {
						t.Fatal("no tuples processed")
					}
					got := make(map[string]int, len(out))
					for _, tp := range out {
						got[fmt.Sprintf("%s=%x@%d", tp.Key, tp.Value, tp.TS)]++
					}
					if len(out) == 0 {
						t.Fatal("query emitted nothing")
					}
					if reference == nil {
						reference = got
						return
					}
					if len(got) != len(reference) {
						t.Fatalf("distinct results = %d, reference %d", len(got), len(reference))
					}
					for k, n := range reference {
						if got[k] != n {
							t.Fatalf("result %q: count %d, reference %d", k, got[k], n)
						}
					}
				})
			}
		})
	}
}

func TestQ7ComputesWindowMax(t *testing.T) {
	// Hand-built events: one bidder, two fixed windows of 5000ms.
	mk := func(bidder, price, ts int64) nexmark.Event {
		return nexmark.Event{Kind: nexmark.KindBid,
			Bid: &nexmark.Bid{Auction: 1, Bidder: bidder, Price: price, DateTime: ts}}
	}
	events := []nexmark.Event{
		mk(7, 100, 0), mk(7, 900, 1000), mk(7, 500, 4000), // window [0,5000): max 900
		mk(7, 50, 6000), mk(7, 75, 7000), // window [5000,10000): max 75
	}
	_, out := runQuery(t, "Q7", statebackend.KindFlowKV, events)
	if len(out) != 2 {
		t.Fatalf("results = %d, want 2 windows", len(out))
	}
	got := map[int64]int64{}
	for _, tp := range out {
		got[tp.TS] = decPrice(tp.Value)
	}
	if got[4999] != 900 || got[9999] != 75 {
		t.Errorf("window maxes = %v, want {4999:900, 9999:75}", got)
	}
}

func TestQ11CountsPerSession(t *testing.T) {
	mk := func(bidder, ts int64) nexmark.Event {
		return nexmark.Event{Kind: nexmark.KindBid,
			Bid: &nexmark.Bid{Auction: 1, Bidder: bidder, Price: 10, DateTime: ts}}
	}
	// Bidder 3: bursts of 3 then 2 separated by > gap (5000).
	events := []nexmark.Event{
		mk(3, 0), mk(3, 1000), mk(3, 2000),
		mk(3, 20_000), mk(3, 21_000),
	}
	_, out := runQuery(t, "Q11", statebackend.KindFlowKV, events)
	if len(out) != 2 {
		t.Fatalf("sessions = %d, want 2", len(out))
	}
	counts := map[int64]bool{}
	for _, tp := range out {
		counts[decPrice(tp.Value)] = true
	}
	if !counts[3] || !counts[2] {
		t.Errorf("session counts missing: %v", counts)
	}
}

func TestQ8EmitsOnlyJoinedPersons(t *testing.T) {
	pe := func(id, ts int64) nexmark.Event {
		return nexmark.Event{Kind: nexmark.KindPerson,
			Person: &nexmark.Person{ID: id, Name: "x", City: "y", DateTime: ts}}
	}
	au := func(seller, ts int64) nexmark.Event {
		return nexmark.Event{Kind: nexmark.KindAuction,
			Auction: &nexmark.Auction{ID: ts, Seller: seller, DateTime: ts}}
	}
	events := []nexmark.Event{
		pe(1, 0), au(1, 100), // person 1 registers and sells in window 0: join
		pe(2, 200),               // person 2 registers but never sells: no join
		au(3, 300),               // seller 3 never registered in-window: no join
		pe(4, 6000), au(4, 9000), // person 4 joins in window [5000,10000)
	}
	_, out := runQuery(t, "Q8", statebackend.KindFlowKV, events)
	if len(out) != 2 {
		t.Fatalf("join results = %d, want 2: %v", len(out), out)
	}
	seen := map[string]bool{}
	for _, tp := range out {
		seen[string(tp.Key)] = true
	}
	if !seen["1"] || !seen["4"] {
		t.Errorf("joined persons = %v, want {1,4}", seen)
	}
}

func TestQ12SingleGlobalWindowPerBidder(t *testing.T) {
	events := testEvents(t, 5000)
	bidders := map[string]int64{}
	for _, ev := range events {
		if ev.Kind == nexmark.KindBid {
			bidders[string(keyOf(ev.Bid.Bidder))]++
		}
	}
	_, out := runQuery(t, "Q12", statebackend.KindInMem, events)
	if len(out) != len(bidders) {
		t.Fatalf("results = %d, distinct bidders = %d", len(out), len(bidders))
	}
	for _, tp := range out {
		if decPrice(tp.Value) != bidders[string(tp.Key)] {
			t.Fatalf("bidder %s count = %d, want %d", tp.Key, decPrice(tp.Value), bidders[string(tp.Key)])
		}
	}
}

func TestQ5EmitsTopAuctionPerSlide(t *testing.T) {
	mk := func(auction, ts int64) nexmark.Event {
		return nexmark.Event{Kind: nexmark.KindBid,
			Bid: &nexmark.Bid{Auction: auction, Bidder: 1, Price: 10, DateTime: ts}}
	}
	// Auction 9 dominates the first window.
	var events []nexmark.Event
	for i := int64(0); i < 10; i++ {
		events = append(events, mk(9, i*100))
	}
	events = append(events, mk(2, 500), mk(3, 600))
	// Push event time forward so all windows close.
	events = append(events, mk(4, 50_000))
	for _, variant := range []string{"Q5", "Q5-Append"} {
		t.Run(variant, func(t *testing.T) {
			_, out := runQuery(t, variant, statebackend.KindInMem, events)
			if len(out) == 0 {
				t.Fatal("no results")
			}
			// The earliest emissions must name auction 9 as the winner.
			auction, count := decAuctionCount(out[0].Value)
			if auction != 9 || count == 0 {
				t.Errorf("first winner = auction %d (count %d), want 9", auction, count)
			}
		})
	}
}

func TestValueEncodings(t *testing.T) {
	if decPrice(encPrice(-12345)) != -12345 {
		t.Error("price round trip")
	}
	a, c := decAuctionCount(encAuctionCount(77, 99))
	if a != 77 || c != 99 {
		t.Errorf("auction-count round trip: %d %d", a, c)
	}
	if decPrice(nil) != 0 {
		t.Error("decPrice(nil)")
	}
	if a, c := decAuctionCount(nil); a != 0 || c != 0 {
		t.Error("decAuctionCount(nil)")
	}
}

func TestMedianHolistic(t *testing.T) {
	vals := [][]byte{encPrice(10), encPrice(30), encPrice(20)}
	if got := decPrice(medianPriceHolistic.Result(nil, vals)); got != 20 {
		t.Errorf("median odd = %d", got)
	}
	vals = append(vals, encPrice(40))
	if got := decPrice(medianPriceHolistic.Result(nil, vals)); got != 25 {
		t.Errorf("median even = %d", got)
	}
	if medianPriceHolistic.Result(nil, nil) != nil {
		t.Error("median of empty should be nil")
	}
}
