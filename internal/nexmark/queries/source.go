package queries

import (
	"fmt"

	"flowkv/internal/nexmark"
	"flowkv/internal/spe"
)

// ReplaySource adapts the deterministic NEXMark generator into the
// seekable source contract jobs require (spe.SeekableSource): events are
// pulled from the generator, run through the query's adapter, and handed
// out one tuple at a time. The offset unit is the number of tuples
// emitted — exact even when one event adapts to several tuples or none —
// and seeking regenerates the stream from the start and discards the
// prefix, which the generator's determinism makes byte-identical.
type ReplaySource struct {
	gen     *nexmark.Generator
	adapt   func(ev nexmark.Event, emit func(spe.Tuple))
	buf     []spe.Tuple
	emitted int64
}

// ReplaySource returns a seekable source feeding this query from a fresh
// generator with the given configuration.
func (q *Query) ReplaySource(cfg nexmark.GeneratorConfig) *ReplaySource {
	return &ReplaySource{gen: nexmark.NewGenerator(cfg), adapt: q.Adapt}
}

// Next implements spe.SeekableSource.
func (s *ReplaySource) Next() (spe.Tuple, bool) {
	for len(s.buf) == 0 {
		ev, ok := s.gen.Next()
		if !ok {
			return spe.Tuple{}, false
		}
		s.adapt(ev, func(t spe.Tuple) { s.buf = append(s.buf, t) })
	}
	t := s.buf[0]
	s.buf = s.buf[1:]
	s.emitted++
	return t, true
}

// Offset implements spe.SeekableSource: tuples emitted so far.
func (s *ReplaySource) Offset() int64 { return s.emitted }

// SeekTo implements spe.SeekableSource by replaying from the start.
func (s *ReplaySource) SeekTo(off int64) error {
	if off < 0 {
		return fmt.Errorf("queries: seek %d out of range", off)
	}
	if err := s.gen.SeekTo(0); err != nil {
		return err
	}
	s.buf = s.buf[:0]
	s.emitted = 0
	for s.emitted < off {
		if _, ok := s.Next(); !ok {
			return fmt.Errorf("queries: seek %d beyond end of stream", off)
		}
	}
	return nil
}

var _ spe.SeekableSource = (*ReplaySource)(nil)
