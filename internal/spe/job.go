package spe

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"flowkv/internal/binio"
	"flowkv/internal/clock"
	"flowkv/internal/core"
	"flowkv/internal/faultfs"
	"flowkv/internal/metrics"
	"flowkv/internal/statebackend"
	"flowkv/internal/window"
)

// Jobs: checkpointed pipeline runs with exactly-once resume.
//
// A Job executes a Pipeline like Run does, but periodically pauses the
// stream at an aligned barrier and commits a resumable point: every
// worker's backend is checkpointed (carrying that worker's operator
// control state as application metadata), the sink results produced
// since the previous barrier are appended to a durable ledger, and a
// JOB file naming the new generation, the source offset, and the
// committed ledger length is atomically renamed into place. The JOB
// rename is the single commit point — a crash at any instant leaves
// either the previous committed generation or the new one.
//
// Resume reverses the protocol: it reads the JOB file, discards any
// uncommitted generation directories and ledger suffix, rebuilds every
// worker's backend from the committed checkpoint (restoring operator
// state from the checkpoint metadata), seeks the source back to the
// committed offset, and replays. Replayed results land in the same
// inter-barrier segments as an uninterrupted run, and each segment is
// sorted canonically before it is appended, so the committed ledger of
// a crashed-and-resumed job is byte-identical to an uninterrupted one:
// exactly-once sink output without deduplicating individual results.
//
// Every pipeline shape participates. Interval-join stages snapshot and
// restore like window stages (IntervalJoinOperator implements the
// snapshot contract). A shared-backend stage commits a single-owner cut:
// the coordinator, which owns the barrier's exclusive cut, takes ONE
// checkpoint of the merged store carrying all workers' operator
// snapshots in a combined frame, and restore fans the snapshots back out
// (the store itself needs no splitting — it is shared). Resume may also
// change a stage's parallelism: committed per-worker checkpoints are
// split/merged along key ranges before replay (see rescale.go).
//
// Determinism requirements on the pipeline: a seekable, deterministic
// source, and every stateful backend must support checkpointing
// (statebackend.Checkpointer — FlowKV). Worker interleaving across
// stages is absorbed by the per-segment canonical sort.

// Job file names inside Job.Dir.
const (
	jobMetaName = "JOB"      // committed progress record (atomic rename)
	genMetaName = "GENMETA"  // per-generation copy of the progress record
	ledgerName  = "SINK.log" // CRC-framed committed sink results
	genPrefix   = "gen-"     // checkpoint generation directories
)

// jobMetaMagic versions the JOB file encoding. v3 appends the per-stage
// routing tables (live-migration ownership); v2 added the per-stage
// parallelisms (the key-range manifest); v1 files (neither) are still
// readable — their layout is recovered from the generation directory
// scan. New JOB files are always written as v3.
const (
	jobMetaMagic   = "flowkv-job3\n"
	jobMetaMagicV2 = "flowkv-job2\n"
	jobMetaMagicV1 = "flowkv-job1\n"
)

// ErrJobKilled reports a run aborted by the KillAfterTuples crash knob.
var ErrJobKilled = errors.New("spe: job killed (simulated crash)")

// ErrCheckpointTimeout reports a barrier checkpoint that waited out its
// DegradedCheckpointTimeout without the store returning to Healthy. The
// run halts with a typed *Halt wrapping this error; the job stays
// resumable from the previous committed generation.
var ErrCheckpointTimeout = errors.New("spe: checkpoint degraded-wait deadline exceeded")

// ErrProgressStalled reports the progress watchdog firing: a barrier
// failed to align, or a checkpoint snapshot made no progress, within
// Job.ProgressDeadline. The run halts with a typed *Halt naming the
// stuck stage, worker and backend; the job stays resumable from the
// previous committed generation — the gray-failure analogue of a crash.
var ErrProgressStalled = errors.New("spe: progress watchdog deadline exceeded")

// Job configures a checkpointed pipeline run.
type Job struct {
	// Pipeline is the dataflow; every stateful backend must support
	// checkpointing (statebackend.Checkpointer). Stage parallelism may
	// differ from the committed generation's — Resume re-partitions the
	// committed state along key ranges.
	Pipeline *Pipeline
	// Source is the replayable input stream.
	Source SeekableSource
	// Dir is the job directory: checkpoint generations, the JOB commit
	// file, and the sink ledger live here.
	Dir string
	// FS is the filesystem seam for job files (fault injection);
	// defaults to the real filesystem. Backend state goes through each
	// backend's own FS option.
	FS faultfs.FS
	// CheckpointEvery is the number of source tuples between barrier
	// checkpoints. Default 1000.
	CheckpointEvery int
	// RetainGenerations is how many committed checkpoint generations to
	// keep on disk (default 1, the latest). Values >= 2 give Resume a
	// fallback: when the committed tip fails checksum verification at
	// restore, it is quarantined and the job restarts from the newest
	// older generation's own GENMETA record — replaying further back but
	// still producing a byte-identical ledger. Each retained generation
	// costs only its delta (hard links share unchanged segment bytes).
	RetainGenerations int
	// KillAfterTuples, when positive, aborts the run after that many
	// tuples have been fed this run — a simulated crash for the recovery
	// battery: no commit happens after the kill, and the job must be
	// resumed. 0 disables.
	KillAfterTuples int64
	// SelfHeal, when set, starts a core.SelfHealer on every FlowKV
	// backend so Degraded stores recover in the background, and lets a
	// barrier checkpoint wait for the heal and retry once instead of
	// aborting the run.
	SelfHeal *core.SelfHealOptions
	// SelfHealWait bounds how long a barrier checkpoint waits for a
	// degraded store to heal. Default 5s.
	SelfHealWait time.Duration
	// DegradedCheckpointTimeout, when positive, overrides SelfHealWait
	// as the wait-and-retry-while-Degraded deadline, and hardens the
	// failure mode: where an expired SelfHealWait surfaces whatever raw
	// checkpoint error last occurred, an expired
	// DegradedCheckpointTimeout halts the run with a typed *Halt whose
	// error wraps ErrCheckpointTimeout — the signal a job manager keys
	// failover on.
	DegradedCheckpointTimeout time.Duration
	// OnCheckpoint, when set, is invoked after every committed
	// generation (the JOB rename has landed) with the generation number
	// and whether it was the final commit. It runs on the coordinator
	// goroutine between barriers — keep it fast. Job managers use it to
	// track per-tenant checkpoint progress.
	OnCheckpoint func(gen int64, final bool)
	// Migrations schedules live key-range handoffs: each entry moves one
	// hash bucket of a private stateful stage to another worker while
	// the job runs, via the crash-safe two-phase protocol in migrate.go.
	Migrations []Migration
	// ProgressDeadline, when positive, arms the progress watchdog: every
	// barrier must align, and every checkpoint snapshot must return,
	// within this bound. A run that blows the deadline halts with a
	// typed *Halt wrapping ErrProgressStalled (naming the stuck stage,
	// worker and backend — the failover signal for a disk that hangs
	// without erroring), abandons the wedged goroutines, and stays
	// resumable from the previous committed generation. Set it well
	// above the worst healthy barrier interval; it is a last line of
	// defense behind the store-level core.Options.OpDeadline. 0 disables.
	ProgressDeadline time.Duration
	// Clock drives the watchdog and degraded-wait timers; nil uses the
	// system clock.
	Clock clock.Clock

	// stopReq is armed by RequestStop; the run loop honors it between
	// tuples.
	stopReq atomic.Bool
}

// RequestStop asks a running job to stop cleanly at the next tuple
// boundary: no commit is taken after the request, the run returns with
// JobResult.Stopped set and a nil error, and Resume continues from the
// last committed generation exactly as after a crash — except nothing
// needs recovering. Job managers use it to relocate a tenant (planned
// rebalancing) without burning a failover or waiting for end of stream.
// Safe to call from any goroutine, any number of times.
func (j *Job) RequestStop() { j.stopReq.Store(true) }

// JobMeta is the committed progress record stored in the JOB file.
type JobMeta struct {
	// Gen is the committed checkpoint generation (its directory is
	// gen-<Gen> under the job dir).
	Gen int64
	// Final marks the job complete: the source was exhausted and the
	// post-Finish state committed.
	Final bool
	// Offset is the source position to Seek to on resume.
	Offset int64
	// TuplesIn, MaxTS and SinceWM restore the watermark cadence so
	// replayed watermarks land between the same tuples.
	TuplesIn int64
	MaxTS    int64
	SinceWM  int64
	// LedgerLen is the committed sink ledger length in bytes; anything
	// beyond it is an uncommitted suffix discarded on resume.
	LedgerLen int64
	// StagePars records each pipeline stage's parallelism at commit time
	// — the key-range manifest: worker w of stage s held exactly the
	// keys with routeKey(key, StagePars[s]) == w. Empty for jobs
	// committed before the manifest existed (v1 JOB files).
	StagePars []int64
	// Routing records each stage's live routing table at commit time:
	// Routing[s][b] is the worker of stage s that owns hash bucket b
	// (len StagePars[s] when present). A nil table, or a nil entry for a
	// stage, means identity — bucket b is owned by worker b. Only live
	// migration (see migrate.go) produces non-identity tables; the JOB
	// rename that carries a flipped table is a migration's single commit
	// point. Resume at a different parallelism resets the stage to
	// identity (the rescale path re-routes every key from scratch).
	Routing [][]int64
}

// SinkRecord is one committed sink result.
type SinkRecord struct {
	// TS is the result's event timestamp.
	TS int64
	// Key and Value are the result tuple's payload.
	Key, Value []byte
}

// JobResult extends RunResult with job progress.
type JobResult struct {
	*RunResult
	// Gen is the last committed checkpoint generation.
	Gen int64
	// Checkpoints counts commits made during this run (including the
	// final one).
	Checkpoints int64
	// Final reports the job ran to end of stream and committed its
	// final state; Resume on a final job is a no-op.
	Final bool
	// Killed reports the run was aborted by KillAfterTuples.
	Killed bool
	// Stopped reports the run ended early because RequestStop was
	// called; the job is resumable from Gen.
	Stopped bool
	// LedgerLen is the committed sink ledger length in bytes.
	LedgerLen int64
}

func (j *Job) fs() faultfs.FS {
	if j.FS != nil {
		return j.FS
	}
	return faultfs.OS
}

func genDirName(gen int64) string { return fmt.Sprintf("%s%06d", genPrefix, gen) }

func workerDirName(stage, worker int) string { return fmt.Sprintf("s%02d-w%02d", stage, worker) }

func sharedDirName(stage int) string { return fmt.Sprintf("s%02d-shared", stage) }

// Run starts the job from a clean slate. It refuses to run over a job
// directory that already has committed progress — use Resume there. Any
// uncommitted debris from a previous attempt (partial generation
// directories, an unreferenced ledger) is cleared first.
func (j *Job) Run() (*JobResult, error) {
	fsys := j.fs()
	if _, err := fsys.ReadFile(filepath.Join(j.Dir, jobMetaName)); err == nil {
		return nil, fmt.Errorf("spe: job dir %s has committed progress; use Resume", j.Dir)
	}
	if err := fsys.MkdirAll(j.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("spe: job: %w", err)
	}
	return j.run(nil)
}

// Resume continues a job from its last committed checkpoint: newest
// valid generation restored, source replayed from the committed offset,
// uncommitted ledger suffix discarded. Resume is idempotent — a crash
// during recovery leaves the committed state untouched, and Resume can
// simply be called again.
//
// When the committed tip fails checksum verification during restore
// (silent corruption, surfacing as core.ErrCheckpointInvalid), the
// rotten generation is quarantined and Resume falls back to the newest
// older generation that RetainGenerations kept alive, restarting from
// that generation's own GENMETA progress record: source offset, ledger
// length and routing all rewind together, so the replayed ledger stays
// byte-identical to an uninterrupted run. With nothing to fall back to
// (RetainGenerations 1, or every retained generation rotten) the
// original verification error is returned.
func (j *Job) Resume() (*JobResult, error) {
	fsys := j.fs()
	meta, err := ReadJobMeta(fsys, j.Dir)
	if err != nil {
		return nil, err
	}
	res, err := j.run(&meta)
	for err != nil && errors.Is(err, core.ErrCheckpointInvalid) {
		tip := filepath.Join(j.Dir, genDirName(meta.Gen))
		if qerr := core.QuarantineCheckpoint(fsys, tip, err.Error()); qerr != nil {
			return res, err
		}
		fb, ok := j.fallbackMeta(meta.Gen)
		if !ok {
			return res, err
		}
		meta = fb
		res, err = j.run(&meta)
	}
	return res, err
}

// fallbackMeta locates the newest committed generation older than gen
// that is not quarantined and still carries a decodable GENMETA record,
// returning its progress record.
func (j *Job) fallbackMeta(gen int64) (JobMeta, bool) {
	fsys := j.fs()
	gens, err := ListGenerations(fsys, j.Dir)
	if err != nil {
		return JobMeta{}, false
	}
	for i := len(gens) - 1; i >= 0; i-- {
		if gens[i] >= gen {
			continue
		}
		dir := filepath.Join(j.Dir, genDirName(gens[i]))
		if core.IsQuarantined(fsys, dir) {
			continue
		}
		b, err := fsys.ReadFile(filepath.Join(dir, genMetaName))
		if err != nil {
			continue
		}
		m, err := decodeJobMeta(b)
		if err != nil || m.Gen != gens[i] {
			continue
		}
		return m, true
	}
	return JobMeta{}, false
}

// retain is the effective generation-retention count (at least 1).
func (j *Job) retain() int64 {
	if j.RetainGenerations > 1 {
		return int64(j.RetainGenerations)
	}
	return 1
}

// jobStage is one stateful stage of a running job: its operators plus
// either per-worker private backends/checkpointers or one shared backend
// with a single-owner checkpoint cut.
type jobStage struct {
	si   int    // pipeline stage index
	name string // stage name for errors
	par  int    // current parallelism
	join bool   // interval-join stage (selects the snapshot codec)
	ops  []opSnapshotter
	// Private mode: one backend + checkpointer per worker.
	backends []statebackend.Backend
	cps      []statebackend.Checkpointer
	// Shared mode: the stage's single backend and checkpointer, plus the
	// deferred drop tracker whose fired-window queue rides inside the
	// single-owner cut (nil when the backend has no partitioned reads).
	shared   statebackend.Backend
	sharedCP statebackend.Checkpointer
	drops    *sharedDrops
	// Per-worker self-healer stop functions (nil entries when no healer
	// runs); sharedHeal covers shared mode. Tracked per worker so live
	// migration can stop and restart a single worker's healer around a
	// backend swap.
	heal       []func()
	sharedHeal func()
}

// eachBackend visits the stage's distinct backends (one in shared mode).
func (js *jobStage) eachBackend(fn func(statebackend.Backend)) {
	if js.shared != nil {
		fn(js.shared)
		return
	}
	for _, b := range js.backends {
		fn(b)
	}
}

// jobRun is the state of one job execution attempt.
type jobRun struct {
	j       *Job
	fsys    faultfs.FS
	r       *runtime
	stages  []*jobStage
	segment []SinkRecord
	lf      faultfs.File
	ledger  int64 // committed + appended ledger bytes
	gen     int64 // last committed generation

	// Live-migration state (migrate.go): the loaded journal, the
	// in-flight attempt, and which plan entries this run has attempted.
	migs     []MigrationRecord
	inflight *migRun
	migTried map[int]bool
}

func (j *Job) run(meta *JobMeta) (*JobResult, error) {
	fsys := j.fs()
	every := j.CheckpointEvery
	if every <= 0 {
		every = 1000
	}
	if j.Source == nil {
		return nil, fmt.Errorf("spe: job needs a seekable source")
	}
	if meta != nil && meta.Final {
		return &JobResult{
			RunResult: &RunResult{Latency: metrics.NewHistogram()},
			Gen:       meta.Gen, Final: true, LedgerLen: meta.LedgerLen,
		}, nil
	}

	// Discard uncommitted debris: generation directories other than the
	// committed one, and any ledger suffix past the committed length.
	keepGen := int64(-1)
	commitLen := int64(0)
	if meta != nil {
		keepGen, commitLen = meta.Gen, meta.LedgerLen
	}
	if err := clearGens(fsys, j.Dir, keepGen, j.retain()); err != nil {
		return nil, err
	}
	lf, err := openLedger(fsys, j.Dir, commitLen)
	if err != nil {
		return nil, err
	}

	// Build the pipeline over fresh worker state: live directories may
	// hold the torn remains of a crashed run, and checkpoint restore
	// requires an empty store, so each backend is destroyed and
	// reopened before use.
	p := *j.Pipeline
	p.Stages = append([]Stage(nil), j.Pipeline.Stages...)
	for i := range p.Stages {
		orig := p.Stages[i].NewBackend
		if orig == nil {
			continue
		}
		p.Stages[i].NewBackend = func(w int) (statebackend.Backend, error) {
			b, err := orig(w)
			if err != nil {
				return nil, err
			}
			if err := b.Destroy(); err != nil {
				return nil, fmt.Errorf("spe: job: clear stale worker state: %w", err)
			}
			return orig(w)
		}
	}

	jr := &jobRun{j: j, fsys: fsys, lf: lf, ledger: commitLen}
	sink := func(t Tuple) {
		jr.segment = append(jr.segment, SinkRecord{
			TS:    t.TS,
			Key:   append([]byte(nil), t.Key...),
			Value: append([]byte(nil), t.Value...),
		})
	}
	r, err := newRuntime(&p, sink, true)
	if err != nil {
		lf.Close()
		return nil, err
	}
	jr.r = r

	fail := func(err error) (*JobResult, error) {
		r.destroyBackends()
		lf.Close()
		return nil, err
	}
	for si, rt := range r.rts {
		if rt.stage.Window == nil && rt.stage.Join == nil {
			continue
		}
		js := &jobStage{si: si, name: rt.stage.Name, par: rt.par, join: rt.stage.Join != nil}
		if rt.shared != nil {
			cp, ok := statebackend.AsCheckpointer(rt.shared)
			if !ok {
				return fail(fmt.Errorf("spe: stage %s: shared backend %s does not support checkpointing", rt.stage.Name, rt.shared.Name()))
			}
			js.shared, js.sharedCP = rt.shared, cp
			js.drops = rt.drops
		}
		for wi, op := range rt.ops {
			snapOp, ok := op.(opSnapshotter)
			if !ok {
				return fail(fmt.Errorf("spe: stage %s worker %d: operator does not support snapshots", rt.stage.Name, wi))
			}
			js.ops = append(js.ops, snapOp)
			if rt.shared == nil {
				cp, ok := statebackend.AsCheckpointer(op.Backend())
				if !ok {
					return fail(fmt.Errorf("spe: stage %s: backend %s does not support checkpointing", rt.stage.Name, op.Backend().Name()))
				}
				js.backends = append(js.backends, op.Backend())
				js.cps = append(js.cps, cp)
			}
		}
		jr.stages = append(jr.stages, js)
	}
	if err := jr.validateMigrations(); err != nil {
		return fail(err)
	}

	// Restore the committed cut (resume) or rewind the source (fresh).
	if meta != nil {
		if err := jr.restoreCommitted(*meta); err != nil {
			return fail(err)
		}
		if err := j.Source.SeekTo(meta.Offset); err != nil {
			return fail(fmt.Errorf("spe: job resume: %w", err))
		}
		r.tuplesIn = meta.TuplesIn
		r.maxTS = meta.MaxTS
		r.sinceWM = int(meta.SinceWM)
		jr.gen = meta.Gen
		r.reseedSharedWindows()
		// Re-apply committed routing tables. A stage resumed at a
		// different parallelism drops back to identity: the rescale path
		// just re-routed every key from scratch.
		for si, tab := range meta.Routing {
			if si >= len(r.rts) || len(tab) != r.rts[si].par {
				continue
			}
			route := make([]int, len(tab))
			identity := true
			for b, w := range tab {
				route[b] = int(w)
				if int(w) != b {
					identity = false
				}
			}
			if !identity {
				r.rts[si].route = route
			}
		}
		// Resolve any migration the crash interrupted: flipped routing
		// means committed, anything else aborted; staging debris goes.
		if err := jr.reconcileMigrations(*meta); err != nil {
			return fail(err)
		}
	} else {
		if err := j.Source.SeekTo(0); err != nil {
			return fail(fmt.Errorf("spe: job: %w", err))
		}
		if err := jr.clearMigrationDebris(); err != nil {
			return fail(err)
		}
	}

	// Background self-healing, if configured.
	jr.startHealers()

	r.startWorkers()
	var (
		checkpoints int64
		killed      bool
		stopped     bool
		srcDone     bool
		runErr      error
		fedThisRun  int64
	)
loop:
	for !srcDone {
		for fed := 0; fed < every; fed++ {
			if r.halted.Load() {
				break loop
			}
			if j.KillAfterTuples > 0 && fedThisRun >= j.KillAfterTuples {
				killed = true
				break loop
			}
			if j.stopReq.Load() {
				stopped = true
				break loop
			}
			t, ok := j.Source.Next()
			if !ok {
				srcDone = true
				break
			}
			r.feed(t)
			fedThisRun++
		}
		if srcDone || r.halted.Load() {
			break
		}
		b, berr := r.injectBarrier(clock.Or(j.Clock), j.ProgressDeadline)
		if berr != nil {
			// Watchdog expiry: the halt is latched, the runtime abandoned.
			runErr = berr
			break
		}
		if r.halted.Load() {
			// A worker failed while the barrier was aligning; committing
			// now would checkpoint past a lost state update.
			close(b.resume)
			break
		}
		// Drive any in-flight migration while the workers are parked:
		// join its PREPARE phase, then commit the handoff in memory (or
		// abort and continue unchanged). The JOB rename below persists a
		// flipped routing table — the migration's single commit point.
		if err := jr.migrateBarrier(); err != nil {
			runErr = err
			close(b.resume)
			break
		}
		err := jr.commit(false)
		close(b.resume)
		if err != nil {
			runErr = err
			break
		}
		checkpoints++
		if err := jr.finishMigration(); err != nil {
			runErr = err
			break
		}
		if err := jr.maybeStartPrepare(); err != nil {
			runErr = err
			break
		}
	}

	// Join any still-running PREPARE clone before teardown; on the
	// crash/kill paths it is left as a real crash would leave it (the
	// journal and staging reconcile on resume). An abandoned runtime
	// skips the join — the clone may be wedged on the same hung store.
	if m := jr.inflight; m != nil && !r.abandoned.Load() {
		<-m.done
	}
	final := false
	if r.abandoned.Load() {
		// Watchdog expiry: drain what exits within the grace period and
		// leak the rest; nothing commits past the wedged worker.
		r.abandonDrain(clock.Or(j.Clock), j.ProgressDeadline)
	} else if killed || stopped || runErr != nil || r.halted.Load() {
		// Abort without committing: drain unprocessed (no Finish).
		r.halted.Store(true)
		r.drain()
	} else {
		// Graceful end of stream: Finish fires the remaining windows,
		// then the post-Finish state commits as the final generation.
		r.drain()
		if r.res.Halted == nil {
			if err := jr.abandonInflight(); err != nil {
				runErr = err
			} else if err := jr.commit(true); err != nil {
				runErr = err
			} else {
				checkpoints++
				final = true
			}
		}
	}
	jr.stopHealers()
	res := r.collect(false)
	lf.Close()

	out := &JobResult{
		RunResult:   res,
		Gen:         jr.gen,
		Checkpoints: checkpoints,
		Final:       final,
		Killed:      killed,
		Stopped:     stopped,
		LedgerLen:   jr.ledger,
	}
	switch {
	case killed:
		return out, ErrJobKilled
	case runErr != nil:
		return out, runErr
	default:
		return out, res.Err
	}
}

// commit writes one checkpoint generation and moves the commit point:
// per-worker checkpoints (with operator snapshots as metadata) for
// private stages, one single-owner checkpoint per shared stage (the
// merged store cut carrying all workers' snapshots in a combined frame),
// the sorted sink segment appended to the ledger, then the JOB file
// renamed into place. Superseded generations are garbage-collected after
// the commit.
func (jr *jobRun) commit(final bool) error {
	j := jr.j
	gen := jr.gen + 1
	genDir := filepath.Join(j.Dir, genDirName(gen))
	if err := jr.fsys.RemoveAll(genDir); err != nil {
		return fmt.Errorf("spe: job checkpoint: clear gen dir: %w", err)
	}
	// Checkpoints are priced incrementally against the previous
	// generation, which clearGens has kept alive exactly for this: each
	// backend hard-links the bytes gen-1 already persisted and rewrites
	// only the delta. Any unusable parent (first generation, a
	// parallelism change, a legacy-format ancestor) silently falls back
	// to a full base.
	prevGenDir := ""
	if jr.gen >= 1 {
		prevGenDir = filepath.Join(j.Dir, genDirName(jr.gen))
	}
	for _, js := range jr.stages {
		if js.shared != nil {
			snaps := make([][]byte, len(js.ops))
			for w, op := range js.ops {
				snaps[w] = op.snapshotState()
			}
			var fired []window.Window
			if js.drops != nil {
				fired = js.drops.snapshotFired()
			}
			dir := filepath.Join(genDir, sharedDirName(js.si))
			parent := ""
			if prevGenDir != "" {
				parent = filepath.Join(prevGenDir, sharedDirName(js.si))
			}
			if err := jr.checkpointBackend(js.sharedCP, js.shared, dir, parent, encodeShardSnaps(snaps, fired)); err != nil {
				return jr.checkpointFailed(js, -1, js.shared, gen, err)
			}
			continue
		}
		for w, op := range js.ops {
			dir := filepath.Join(genDir, workerDirName(js.si, w))
			parent := ""
			if prevGenDir != "" {
				parent = filepath.Join(prevGenDir, workerDirName(js.si, w))
			}
			if err := jr.checkpointBackend(js.cps[w], js.backends[w], dir, parent, op.snapshotState()); err != nil {
				return jr.checkpointFailed(js, w, js.backends[w], gen, err)
			}
		}
	}
	if err := jr.appendSegment(); err != nil {
		return err
	}
	pars := make([]int64, len(jr.r.rts))
	routed := false
	for i, rt := range jr.r.rts {
		pars[i] = int64(rt.par)
		if rt.route != nil {
			routed = true
		}
	}
	var routing [][]int64
	if routed {
		routing = make([][]int64, len(jr.r.rts))
		for i, rt := range jr.r.rts {
			if rt.route == nil {
				continue
			}
			tab := make([]int64, len(rt.route))
			for b, w := range rt.route {
				tab[b] = int64(w)
			}
			routing[i] = tab
		}
	}
	m := JobMeta{
		Gen:       gen,
		Final:     final,
		Offset:    j.Source.Offset(),
		TuplesIn:  jr.r.tuplesIn,
		MaxTS:     jr.r.maxTS,
		SinceWM:   int64(jr.r.sinceWM),
		LedgerLen: jr.ledger,
		StagePars: pars,
		Routing:   routing,
	}
	// The generation carries its own copy of the progress record: when a
	// newer generation rots and is quarantined, Resume restores from this
	// one using its committed offset, ledger length and routing — without
	// trusting the JOB file that points at the rotten tip. Written before
	// the JOB rename so the commit point covers it.
	if err := writeGenMeta(jr.fsys, genDir, m); err != nil {
		return err
	}
	if err := writeJobMeta(jr.fsys, j.Dir, m); err != nil {
		return err
	}
	jr.gen = gen
	// GC failures do not invalidate the commit; stale generations are
	// re-cleared on the next run.
	clearGens(jr.fsys, j.Dir, gen, j.retain())
	if j.OnCheckpoint != nil {
		j.OnCheckpoint(gen, final)
	}
	return nil
}

// startHealers starts a background self-healer on every backend (when
// the job configures SelfHeal), tracked per worker so a single worker's
// healer can be stopped and restarted around a migration backend swap.
func (jr *jobRun) startHealers() {
	if jr.j.SelfHeal == nil {
		return
	}
	for _, js := range jr.stages {
		if js.shared != nil {
			if stop, ok := statebackend.StartSelfHeal(js.shared, *jr.j.SelfHeal); ok {
				js.sharedHeal = stop
			}
			continue
		}
		js.heal = make([]func(), len(js.backends))
		for w := range js.backends {
			jr.startHeal(js, w)
		}
	}
}

// startHeal (re)starts one worker's self-healer over its current
// backend.
func (jr *jobRun) startHeal(js *jobStage, w int) {
	if jr.j.SelfHeal == nil || js.shared != nil {
		return
	}
	if js.heal == nil {
		js.heal = make([]func(), len(js.backends))
	}
	jr.stopHeal(js, w)
	if stop, ok := statebackend.StartSelfHeal(js.backends[w], *jr.j.SelfHeal); ok {
		js.heal[w] = stop
	}
}

// stopHeal stops one worker's self-healer, if running.
func (jr *jobRun) stopHeal(js *jobStage, w int) {
	if js.heal == nil || w >= len(js.heal) || js.heal[w] == nil {
		return
	}
	js.heal[w]()
	js.heal[w] = nil
}

// stopHealers stops every running self-healer.
func (jr *jobRun) stopHealers() {
	for _, js := range jr.stages {
		if js.sharedHeal != nil {
			js.sharedHeal()
			js.sharedHeal = nil
		}
		for w := range js.heal {
			jr.stopHeal(js, w)
		}
	}
}

// checkpointFailed shapes a checkpoint error. A degraded-wait deadline
// expiry becomes a typed *Halt naming the stage, worker and backend —
// the structured failure a job manager keys failover on — latched into
// the run result exactly as a worker-side halt would be (the workers
// are parked at the barrier, so the coordinator owns the result).
func (jr *jobRun) checkpointFailed(js *jobStage, worker int, b statebackend.Backend, gen int64, err error) error {
	if !errors.Is(err, ErrCheckpointTimeout) && !errors.Is(err, ErrProgressStalled) {
		return fmt.Errorf("spe: job checkpoint gen %d: %w", gen, err)
	}
	h := &Halt{Stage: js.name, Worker: worker, Backend: b.Name(), Err: err}
	jr.r.errMu.Lock()
	if jr.r.res.Halted == nil {
		jr.r.res.Halted = h
	}
	jr.r.errMu.Unlock()
	jr.r.halted.Store(true)
	return h
}

// checkpointBackend snapshots one backend with meta as its application
// metadata. If the checkpoint fails while a self-healer is running, wait
// for the store to come back Healthy and retry, bounded by SelfHealWait:
// a flush failure during the checkpoint poisons the live logs, Recover
// rewrites the buffered tail at the durable offset, and the retried
// checkpoint captures the full state — the run survives transient faults
// (even ones spanning several retries) without restarting. A store that
// reaches Failed, or a failure that persists with the store Healthy
// (confined to the snapshot directory), aborts the attempt; the run ends
// uncommitted and stays resumable.
func (jr *jobRun) checkpointBackend(cp statebackend.Checkpointer, b statebackend.Backend, dir, parent string, meta []byte) error {
	clk := clock.Or(jr.j.Clock)
	// Backends with the incremental capability always go through the
	// delta path — with an empty or unusable parent it writes a full
	// base in the segmented format, so later generations can link
	// against it; plain Checkpointers take full snapshots forever.
	snap := func() error {
		if dc, ok := cp.(statebackend.DeltaCheckpointer); ok {
			return dc.CheckpointDeltaMeta(dir, parent, meta)
		}
		return cp.CheckpointMeta(dir, meta)
	}
	if pd := jr.j.ProgressDeadline; pd > 0 {
		// Checkpoint-side progress watchdog: a snapshot wedged in a hung
		// syscall (no store-level OpDeadline to bound it) is abandoned at
		// the deadline rather than wedging the coordinator. The leaked
		// goroutine finishes into an abandoned runtime — teardown will
		// not touch its backend.
		bounded := snap
		snap = func() error {
			done := make(chan error, 1)
			go func() { done <- bounded() }()
			select {
			case err := <-done:
				return err
			case <-clk.After(pd):
				jr.r.abandoned.Store(true)
				return fmt.Errorf("%w: checkpoint snapshot of %s made no progress in %v", ErrProgressStalled, b.Name(), pd)
			}
		}
	}
	err := snap()
	if errors.Is(err, ErrProgressStalled) {
		return err // the snapshot goroutine is wedged; never retry into it
	}
	typedDeadline := jr.j.DegradedCheckpointTimeout > 0
	if err == nil || (jr.j.SelfHeal == nil && !typedDeadline) {
		return err
	}
	wait := jr.j.DegradedCheckpointTimeout
	if wait <= 0 {
		wait = jr.j.SelfHealWait
	}
	if wait <= 0 {
		wait = 5 * time.Second
	}
	deadline := clk.Now().Add(wait)
	wasDegraded := false
	for clk.Now().Before(deadline) {
		h, ok := statebackend.FlowKVHealth(b)
		if !ok || h == core.Failed {
			return err
		}
		if h != core.Healthy {
			wasDegraded = true
			clk.Sleep(time.Millisecond)
			continue
		}
		if err = snap(); err == nil {
			return nil
		}
		if errors.Is(err, ErrProgressStalled) {
			return err
		}
		if !wasDegraded {
			// The store never left Healthy, so the failure is confined
			// to the snapshot directory; healing cannot fix it.
			return err
		}
		wasDegraded = false
	}
	if typedDeadline {
		return fmt.Errorf("%w after %v (last error: %v)", ErrCheckpointTimeout, wait, err)
	}
	return err
}

// restoreCommitted rebuilds every stateful stage from the committed
// generation. Same-parallelism private stages restore worker-for-worker;
// a parallelism change routes each committed worker checkpoint through a
// scratch store and re-appends its state into the new workers by key
// hash, then re-partitions the operator snapshots the same way. Shared
// stages restore their single merged cut and fan the combined operator
// snapshots back out — re-partitioned first if the worker count changed.
// The committed generation is only ever read; a crash mid-restore leaves
// it intact for the next Resume.
func (jr *jobRun) restoreCommitted(meta JobMeta) error {
	j := jr.j
	genDir := filepath.Join(j.Dir, genDirName(meta.Gen))
	layout, err := CommittedLayout(jr.fsys, j.Dir, meta.Gen)
	if err != nil {
		return err
	}
	scratchRoot := filepath.Join(j.Dir, rescaleDirName)
	defer jr.fsys.RemoveAll(scratchRoot)
	for _, js := range jr.stages {
		cs, ok := layout[js.si]
		if !ok {
			return fmt.Errorf("spe: job resume gen %d: stage %s has no committed checkpoint", meta.Gen, js.name)
		}
		if cs.Shared != (js.shared != nil) {
			return fmt.Errorf("spe: job resume gen %d: stage %s committed shared=%v, pipeline shared=%v", meta.Gen, js.name, cs.Shared, js.shared != nil)
		}
		if js.shared != nil {
			combined, err := js.sharedCP.RestoreMeta(filepath.Join(genDir, sharedDirName(js.si)))
			if err != nil {
				return fmt.Errorf("spe: job resume gen %d: %w", meta.Gen, err)
			}
			snaps, fired, err := decodeShardSnaps(combined)
			if err != nil {
				return fmt.Errorf("spe: job resume gen %d: %w", meta.Gen, err)
			}
			if len(snaps) != js.par {
				if snaps, err = repartitionOpSnaps(snaps, js.par, js.join); err != nil {
					return fmt.Errorf("spe: job rescale stage %s %d->%d: %w", js.name, len(snaps), js.par, err)
				}
			}
			for w, op := range js.ops {
				if err := op.restoreState(snaps[w]); err != nil {
					return fmt.Errorf("spe: job resume gen %d: %w", meta.Gen, err)
				}
			}
			// Requeue the committed fired-window list: these windows'
			// merged state is still linked in the shared store but no
			// operator snapshot references them anymore, so without the
			// reseed a resumed stage would leak them as orphans.
			if js.drops != nil {
				js.drops.reseedFired(fired)
			}
			continue
		}
		if cs.Workers == js.par {
			for w, op := range js.ops {
				snap, err := js.cps[w].RestoreMeta(filepath.Join(genDir, workerDirName(js.si, w)))
				if err != nil {
					return fmt.Errorf("spe: job resume gen %d: %w", meta.Gen, err)
				}
				if err := op.restoreState(snap); err != nil {
					return fmt.Errorf("spe: job resume gen %d: %w", meta.Gen, err)
				}
			}
			continue
		}
		// Rescale: split/merge the committed key ranges onto the new
		// worker set.
		route := func(key []byte) int { return routeKey(key, js.par) }
		if js.join {
			// Join state lives under side-tagged backend keys; the new
			// owner is decided by the user key, as live routing does.
			route = func(key []byte) int { return routeKey(sideKeyUser(key), js.par) }
		}
		oldSnaps := make([][]byte, 0, cs.Workers)
		for ow := 0; ow < cs.Workers; ow++ {
			snap, err := rerouteCheckpointState(jr.fsys,
				filepath.Join(genDir, workerDirName(js.si, ow)),
				filepath.Join(scratchRoot, workerDirName(js.si, ow)),
				js.backends, route)
			if err != nil {
				return fmt.Errorf("spe: job rescale stage %s %d->%d: %w", js.name, cs.Workers, js.par, err)
			}
			oldSnaps = append(oldSnaps, snap)
		}
		newSnaps, err := repartitionOpSnaps(oldSnaps, js.par, js.join)
		if err != nil {
			return fmt.Errorf("spe: job rescale stage %s %d->%d: %w", js.name, cs.Workers, js.par, err)
		}
		for w, op := range js.ops {
			if err := op.restoreState(newSnaps[w]); err != nil {
				return fmt.Errorf("spe: job rescale stage %s %d->%d: %w", js.name, cs.Workers, js.par, err)
			}
		}
	}
	return nil
}

// appendSegment sorts the inter-barrier sink segment canonically by
// (TS, Key, Value) and appends it to the ledger. The sort is what makes
// ledger bytes independent of worker interleaving: the segment's record
// set is deterministic (barriers land at fixed source positions and
// triggers fire at fixed watermarks), only its arrival order is not.
func (jr *jobRun) appendSegment() error {
	seg := jr.segment
	jr.segment = jr.segment[:0]
	sort.Slice(seg, func(i, k int) bool {
		if seg[i].TS != seg[k].TS {
			return seg[i].TS < seg[k].TS
		}
		if c := bytes.Compare(seg[i].Key, seg[k].Key); c != 0 {
			return c < 0
		}
		return bytes.Compare(seg[i].Value, seg[k].Value) < 0
	})
	var buf []byte
	for _, rec := range seg {
		p := binio.PutVarint(nil, rec.TS)
		p = binio.PutBytes(p, rec.Key)
		p = binio.PutBytes(p, rec.Value)
		buf = binio.AppendRecord(buf, p)
	}
	if len(buf) == 0 {
		return nil
	}
	if _, err := jr.lf.Write(buf); err != nil {
		return fmt.Errorf("spe: job ledger: %w", err)
	}
	if err := jr.lf.Sync(); err != nil {
		return fmt.Errorf("spe: job ledger: %w", err)
	}
	jr.ledger += int64(len(buf))
	return nil
}

// clearGens removes stale generation directories, keeping the newest
// retain committed generations ending at keep (keep -1 removes all).
// Anything newer than keep is uncommitted debris and always goes.
// Quarantined generations are skipped either way: they are preserved
// evidence of detected rot, never restored from and never silently
// reclaimed.
func clearGens(fsys faultfs.FS, dir string, keep, retain int64) error {
	if retain < 1 {
		retain = 1
	}
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("spe: job: scan generations: %w", err)
	}
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, genPrefix) {
			continue
		}
		if keep >= 0 {
			var n int64
			if _, serr := fmt.Sscanf(strings.TrimPrefix(name, genPrefix), "%d", &n); serr == nil &&
				name == genDirName(n) && n <= keep && n > keep-retain {
				continue // inside the retained window
			}
		}
		path := filepath.Join(dir, name)
		if e.IsDir() && core.IsQuarantined(fsys, path) {
			continue
		}
		if err := fsys.RemoveAll(path); err != nil {
			return fmt.Errorf("spe: job: clear stale generation: %w", err)
		}
	}
	return nil
}

// openLedger truncates the ledger to the committed length (discarding
// any uncommitted suffix) and returns a handle positioned for appends.
func openLedger(fsys faultfs.FS, dir string, commitLen int64) (faultfs.File, error) {
	f, err := fsys.OpenFile(filepath.Join(dir, ledgerName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("spe: job ledger: %w", err)
	}
	if err := f.Truncate(commitLen); err != nil {
		f.Close()
		return nil, fmt.Errorf("spe: job ledger: truncate to committed length: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("spe: job ledger: %w", err)
	}
	if _, err := f.Seek(commitLen, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("spe: job ledger: %w", err)
	}
	return f, nil
}

func encodeJobMeta(m JobMeta) []byte {
	p := []byte(jobMetaMagic)
	p = binio.PutVarint(p, m.Gen)
	var fin int64
	if m.Final {
		fin = 1
	}
	p = binio.PutVarint(p, fin)
	p = binio.PutVarint(p, m.Offset)
	p = binio.PutVarint(p, m.TuplesIn)
	p = binio.PutVarint(p, m.MaxTS)
	p = binio.PutVarint(p, m.SinceWM)
	p = binio.PutVarint(p, m.LedgerLen)
	p = binio.PutUvarint(p, uint64(len(m.StagePars)))
	for _, sp := range m.StagePars {
		p = binio.PutVarint(p, sp)
	}
	p = binio.PutUvarint(p, uint64(len(m.Routing)))
	for _, rt := range m.Routing {
		p = binio.PutUvarint(p, uint64(len(rt)))
		for _, w := range rt {
			p = binio.PutVarint(p, w)
		}
	}
	return binio.AppendRecord(nil, p)
}

func decodeJobMeta(b []byte) (JobMeta, error) {
	payload, _, err := binio.ReadRecord(b)
	if err != nil {
		return JobMeta{}, fmt.Errorf("spe: corrupt JOB file: %w", err)
	}
	version := 3
	switch {
	case len(payload) >= len(jobMetaMagic) && string(payload[:len(jobMetaMagic)]) == jobMetaMagic:
	case len(payload) >= len(jobMetaMagicV2) && string(payload[:len(jobMetaMagicV2)]) == jobMetaMagicV2:
		version = 2
	case len(payload) >= len(jobMetaMagicV1) && string(payload[:len(jobMetaMagicV1)]) == jobMetaMagicV1:
		version = 1
	default:
		return JobMeta{}, fmt.Errorf("spe: not a JOB file (bad magic)")
	}
	d := snapDecoder{b: payload[len(jobMetaMagic):]} // all three magics have equal length
	var m JobMeta
	m.Gen = d.varint()
	m.Final = d.varint() != 0
	m.Offset = d.varint()
	m.TuplesIn = d.varint()
	m.MaxTS = d.varint()
	m.SinceWM = d.varint()
	m.LedgerLen = d.varint()
	if version >= 2 {
		n := d.uvarint()
		if n > maxShardSnaps {
			return JobMeta{}, fmt.Errorf("spe: corrupt JOB file: %d stages", n)
		}
		for i := uint64(0); i < n; i++ {
			m.StagePars = append(m.StagePars, d.varint())
		}
	}
	if version >= 3 {
		n := d.uvarint()
		if n > maxShardSnaps {
			return JobMeta{}, fmt.Errorf("spe: corrupt JOB file: %d routing tables", n)
		}
		for i := uint64(0); i < n; i++ {
			rn := d.uvarint()
			if rn > maxShardSnaps {
				return JobMeta{}, fmt.Errorf("spe: corrupt JOB file: %d routing entries", rn)
			}
			var rt []int64
			for k := uint64(0); k < rn; k++ {
				rt = append(rt, d.varint())
			}
			m.Routing = append(m.Routing, rt)
		}
	}
	if d.err != nil {
		return JobMeta{}, fmt.Errorf("spe: corrupt JOB file: %w", d.err)
	}
	if err := m.validRouting(); err != nil {
		return JobMeta{}, err
	}
	return m, nil
}

// validRouting rejects routing tables that name out-of-range workers —
// a corrupt (bit-flipped but CRC-colliding) or hand-edited table must
// fail decode, not index a worker slice out of bounds at dispatch time.
func (m *JobMeta) validRouting() error {
	if len(m.Routing) == 0 {
		return nil
	}
	if len(m.Routing) != len(m.StagePars) {
		return fmt.Errorf("spe: corrupt JOB file: %d routing tables for %d stages", len(m.Routing), len(m.StagePars))
	}
	for si, rt := range m.Routing {
		if len(rt) == 0 {
			continue
		}
		if int64(len(rt)) != m.StagePars[si] {
			return fmt.Errorf("spe: corrupt JOB file: stage %d routing has %d buckets, parallelism %d", si, len(rt), m.StagePars[si])
		}
		for b, w := range rt {
			if w < 0 || w >= m.StagePars[si] {
				return fmt.Errorf("spe: corrupt JOB file: stage %d bucket %d routed to worker %d of %d", si, b, w, m.StagePars[si])
			}
		}
	}
	return nil
}

// writeGenMeta drops the progress record into the generation directory
// itself (same encoding as the JOB file). No rename dance: the sidecar
// only ever becomes meaningful once the JOB rename commits the
// generation, and a torn GENMETA fails decode and is simply not a
// fallback candidate.
func writeGenMeta(fsys faultfs.FS, genDir string, m JobMeta) error {
	f, err := fsys.Create(filepath.Join(genDir, genMetaName))
	if err != nil {
		return fmt.Errorf("spe: job commit: gen meta: %w", err)
	}
	if _, err := f.Write(encodeJobMeta(m)); err != nil {
		f.Close()
		return fmt.Errorf("spe: job commit: gen meta: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("spe: job commit: gen meta: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("spe: job commit: gen meta: %w", err)
	}
	return fsys.SyncDir(genDir)
}

// writeJobMeta durably replaces the JOB file: write + fsync a temporary,
// atomic rename, fsync the directory. The rename is the job's commit
// point.
func writeJobMeta(fsys faultfs.FS, dir string, m JobMeta) error {
	path := filepath.Join(dir, jobMetaName)
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("spe: job commit: %w", err)
	}
	if _, err := f.Write(encodeJobMeta(m)); err != nil {
		f.Close()
		return fmt.Errorf("spe: job commit: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("spe: job commit: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("spe: job commit: %w", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return fmt.Errorf("spe: job commit: %w", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("spe: job commit: %w", err)
	}
	return nil
}

// ReadJobMeta reads the committed progress record of a job directory.
// A nil fsys uses the real filesystem.
func ReadJobMeta(fsys faultfs.FS, dir string) (JobMeta, error) {
	if fsys == nil {
		fsys = faultfs.OS
	}
	b, err := fsys.ReadFile(filepath.Join(dir, jobMetaName))
	if err != nil {
		return JobMeta{}, fmt.Errorf("spe: read job meta: %w", err)
	}
	return decodeJobMeta(b)
}

// ReadLedger returns the committed sink results of a job directory,
// stopping cleanly at a torn tail (uncommitted suffix after a crash).
// A nil fsys uses the real filesystem.
func ReadLedger(fsys faultfs.FS, dir string) ([]SinkRecord, error) {
	if fsys == nil {
		fsys = faultfs.OS
	}
	f, err := fsys.Open(filepath.Join(dir, ledgerName))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("spe: read ledger: %w", err)
	}
	defer f.Close()
	sc := binio.NewRecordScanner(f, 0)
	var out []SinkRecord
	for sc.Scan() {
		d := snapDecoder{b: sc.Record()}
		ts := d.varint()
		key := d.bytes()
		val := d.bytes()
		if d.err != nil {
			return nil, fmt.Errorf("spe: corrupt ledger record: %w", d.err)
		}
		out = append(out, SinkRecord{TS: ts, Key: key, Value: val})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("spe: read ledger: %w", err)
	}
	return out, nil
}

// ReadLedgerBytes returns the raw committed sink ledger of a job
// directory, truncated to the length recorded in the JOB file — the byte
// string that is identical between a crashed-and-resumed job and an
// uninterrupted one. A missing ledger reads as empty. A nil fsys uses
// the real filesystem.
func ReadLedgerBytes(fsys faultfs.FS, dir string) ([]byte, error) {
	if fsys == nil {
		fsys = faultfs.OS
	}
	b, err := fsys.ReadFile(filepath.Join(dir, ledgerName))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("spe: read ledger: %w", err)
	}
	if meta, err := ReadJobMeta(fsys, dir); err == nil && meta.LedgerLen < int64(len(b)) {
		b = b[:meta.LedgerLen]
	}
	return b, nil
}

// ListGenerations returns the checkpoint generation numbers present in a
// job directory, ascending. At most the committed generation and one
// uncommitted in-flight generation exist at any instant; stale ones are
// removed on resume. A nil fsys uses the real filesystem.
func ListGenerations(fsys faultfs.FS, dir string) ([]int64, error) {
	if fsys == nil {
		fsys = faultfs.OS
	}
	ents, err := fsys.ReadDir(dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("spe: job: scan generations: %w", err)
	}
	var gens []int64
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() || !strings.HasPrefix(name, genPrefix) {
			continue
		}
		var n int64
		if _, err := fmt.Sscanf(strings.TrimPrefix(name, genPrefix), "%d", &n); err != nil {
			continue
		}
		gens = append(gens, n)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}
