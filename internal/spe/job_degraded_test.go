package spe

import (
	"bytes"
	"errors"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"flowkv/internal/binio"
	"flowkv/internal/faultfs"
	"flowkv/internal/window"
)

// TestShardSnapsCodecFiredWindows covers the v2 shared-stage snapshot
// frame: the fired-window queue rides next to the per-worker operator
// snapshots, and v1 frames (no queue) still decode.
func TestShardSnapsCodecFiredWindows(t *testing.T) {
	snaps := [][]byte{[]byte("worker-0"), []byte("worker-1"), nil}
	fired := []window.Window{{Start: 0, End: 64}, {Start: 64, End: 128}}
	enc := encodeShardSnaps(snaps, fired)
	gotSnaps, gotFired, err := decodeShardSnaps(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotSnaps) != len(snaps) {
		t.Fatalf("decoded %d snaps, want %d", len(gotSnaps), len(snaps))
	}
	for i := range snaps {
		if !bytes.Equal(gotSnaps[i], snaps[i]) {
			t.Fatalf("snap %d changed: %q -> %q", i, snaps[i], gotSnaps[i])
		}
	}
	if !reflect.DeepEqual(gotFired, fired) {
		t.Fatalf("fired windows changed: %v -> %v", fired, gotFired)
	}

	// Empty fired queue round-trips as empty.
	if _, gotFired, err = decodeShardSnaps(encodeShardSnaps(snaps, nil)); err != nil || len(gotFired) != 0 {
		t.Fatalf("empty queue round trip: fired=%v err=%v", gotFired, err)
	}

	// v1 frame: same layout minus the queue, old magic.
	v1 := []byte(shardSnapsMagicV1)
	v1 = binio.PutUvarint(v1, uint64(len(snaps)))
	for _, s := range snaps {
		v1 = binio.PutBytes(v1, s)
	}
	gotSnaps, gotFired, err = decodeShardSnaps(v1)
	if err != nil {
		t.Fatalf("v1 fallback: %v", err)
	}
	if len(gotSnaps) != len(snaps) || gotFired != nil {
		t.Fatalf("v1 fallback: %d snaps, fired=%v", len(gotSnaps), gotFired)
	}

	// Corruption must be rejected, not panic.
	if _, _, err := decodeShardSnaps(enc[:len(enc)-2]); err == nil {
		t.Fatal("truncated frame accepted")
	}
	if _, _, err := decodeShardSnaps([]byte("not a frame")); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestSharedDropsReseedFired: a committed fired-window queue reseeded
// into a fresh tracker must unlink exactly those windows once the
// stage-min watermark passes their end — the orphan-window leak the v2
// frame exists to close.
func TestSharedDropsReseedFired(t *testing.T) {
	var dropped []window.Window
	d := newSharedDrops(2, func(w window.Window) error {
		dropped = append(dropped, w)
		return nil
	})
	// Restored watermarks: both workers committed at wm=50.
	d.reseedWM(0, 50)
	d.reseedWM(1, 50)
	// Committed queue: {0,40} already due (end <= 50), {100,140} not.
	d.reseedFired([]window.Window{{Start: 0, End: 40}, {Start: 100, End: 140}})

	if err := d.noteWM(0, 60); err != nil {
		t.Fatal(err)
	}
	if len(dropped) != 1 || dropped[0] != (window.Window{Start: 0, End: 40}) {
		t.Fatalf("after first watermark: dropped %v, want [{0 40}]", dropped)
	}
	// The second window stays until BOTH workers pass its end.
	if err := d.noteWM(0, 200); err != nil {
		t.Fatal(err)
	}
	if len(dropped) != 1 {
		t.Fatalf("window dropped before stage-min watermark passed: %v", dropped)
	}
	if err := d.noteWM(1, 200); err != nil {
		t.Fatal(err)
	}
	if len(dropped) != 2 || dropped[1] != (window.Window{Start: 100, End: 140}) {
		t.Fatalf("after both watermarks: dropped %v", dropped)
	}
	// snapshotFired sorts canonically and reflects only the live queue.
	d.reseedFired([]window.Window{{Start: 300, End: 360}, {Start: 200, End: 260}})
	got := d.snapshotFired()
	want := []window.Window{{Start: 200, End: 260}, {Start: 300, End: 360}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("snapshotFired = %v, want %v", got, want)
	}
}

// TestJobDegradedCheckpointTimeout: with no healer running, a store
// degraded mid-checkpoint can never return to Healthy, and the old
// SelfHealWait path would just report the raw flush error after its
// wait. DegradedCheckpointTimeout instead converts the expired wait
// into a typed *Halt wrapping ErrCheckpointTimeout that names the
// failing stage and backend — and the job stays resumable.
func TestJobDegradedCheckpointTimeout(t *testing.T) {
	tuples := crashTuples(400)
	const every = 61
	pat := crashPatterns()[1] // AUR
	golden := goldenLedger(t, pat, tuples, every, 1<<20)
	base := t.TempDir()
	inj := faultfs.NewInjector(faultfs.OS)
	job := &Job{
		Pipeline:                  crashPipeline(pat, filepath.Join(base, "state"), inj, 1<<20),
		Source:                    NewSliceSource(tuples),
		Dir:                       filepath.Join(base, "job"),
		CheckpointEvery:           every,
		DegradedCheckpointTimeout: 50 * time.Millisecond,
	}
	// Arm a persistent write fault once ingest is underway: the large
	// write buffer confines it to the checkpoint flush, which degrades
	// the store; nothing ever heals it.
	job.Pipeline.StatsEvery = 30
	armed := false
	job.Pipeline.OnStats = func(StatsReport) {
		if !armed {
			armed = true
			inj.SetRule(faultfs.Rule{Op: faultfs.OpWrite, PathContains: "state",
				Class: faultfs.ClassPersistent, Err: faultfs.ErrDiskIO})
		}
	}
	res, err := job.Run()
	if err == nil {
		t.Fatal("run with unhealable degraded store succeeded")
	}
	if !errors.Is(err, ErrCheckpointTimeout) {
		t.Fatalf("error = %v, want ErrCheckpointTimeout cause", err)
	}
	var halt *Halt
	if !errors.As(err, &halt) {
		t.Fatalf("error %T is not a typed *Halt", err)
	}
	if halt.Stage != "win" || halt.Backend != "flowkv" {
		t.Fatalf("halt = %+v, want stage win backend flowkv", halt)
	}
	if res.Halted == nil || !errors.Is(res.Halted, ErrCheckpointTimeout) {
		t.Fatalf("result.Halted = %v, want typed checkpoint-timeout halt", res.Halted)
	}
	if res.Final {
		t.Fatal("halted run reported final")
	}

	// The halt committed nothing past the fault: clearing it and
	// resuming must finish with the golden ledger exactly.
	inj.Reset()
	resumeToFinal(t, func(int64) *Job {
		return &Job{
			Pipeline:        crashPipeline(pat, filepath.Join(base, "state"), nil, 1<<20),
			Source:          NewSliceSource(tuples),
			Dir:             filepath.Join(base, "job"),
			CheckpointEvery: every,
		}
	}, golden)
}
