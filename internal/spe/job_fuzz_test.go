package spe

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"flowkv/internal/binio"
)

// encodeJobMetaV1 builds a legacy v1 JOB record (no StagePars manifest)
// for fallback-path seeds.
func encodeJobMetaV1(m JobMeta) []byte {
	p := []byte(jobMetaMagicV1)
	p = binio.PutVarint(p, m.Gen)
	var fin int64
	if m.Final {
		fin = 1
	}
	p = binio.PutVarint(p, fin)
	p = binio.PutVarint(p, m.Offset)
	p = binio.PutVarint(p, m.TuplesIn)
	p = binio.PutVarint(p, m.MaxTS)
	p = binio.PutVarint(p, m.SinceWM)
	p = binio.PutVarint(p, m.LedgerLen)
	return binio.AppendRecord(nil, p)
}

// realJobRecord runs a tiny checkpointed job and returns its committed
// JOB file — a seed drawn from the real encoder+commit path rather than
// hand-assembled bytes.
func realJobRecord(f *testing.F) []byte {
	f.Helper()
	base := f.TempDir()
	pat := crashPatterns()[0] // AAR
	job := &Job{
		Pipeline:        crashPipeline(pat, filepath.Join(base, "state"), nil, 1<<20),
		Source:          NewSliceSource(crashTuples(60)),
		Dir:             filepath.Join(base, "job"),
		CheckpointEvery: 25,
	}
	if _, err := job.Run(); err != nil {
		f.Fatalf("seed job: %v", err)
	}
	b, err := os.ReadFile(filepath.Join(base, "job", jobMetaName))
	if err != nil {
		f.Fatalf("seed job record: %v", err)
	}
	return b
}

// FuzzDecodeJobRecord feeds arbitrary bytes to the JOB file decoder.
// The JOB record is the single commit point of every checkpointed run —
// resume trusts it to locate the committed generation, source offset
// and ledger length — so the decoder must reject corruption with a
// reason rather than panic, and anything it accepts must survive a
// re-encode/decode round trip unchanged (v1 records re-encode as v2
// with an empty manifest).
func FuzzDecodeJobRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeJobMeta(JobMeta{}))
	f.Add(encodeJobMeta(JobMeta{
		Gen: 7, Offset: 4210, TuplesIn: 4210, MaxTS: 982, SinceWM: 10,
		LedgerLen: 65536, StagePars: []int64{2, 4, 1},
	}))
	f.Add(encodeJobMeta(JobMeta{Gen: 3, Final: true, Offset: 100, LedgerLen: 12, StagePars: []int64{1}}))
	f.Add(encodeJobMetaV1(JobMeta{Gen: 2, Offset: 99, TuplesIn: 99, MaxTS: 55, SinceWM: 3, LedgerLen: 2048}))
	real := realJobRecord(f)
	f.Add(real)
	// Truncated and bit-flipped variants of the real committed record.
	f.Add(real[:len(real)/2])
	flipped := append([]byte(nil), real...)
	flipped[len(flipped)/2] ^= 0x20
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := decodeJobMeta(b)
		if err != nil {
			return
		}
		re := encodeJobMeta(m)
		m2, err := decodeJobMeta(re)
		if err != nil {
			t.Fatalf("re-encoded JOB record rejected: %v", err)
		}
		if m.StagePars == nil {
			m.StagePars = nil // v1: decodes nil, re-decodes nil — normalize
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("round trip changed record: %+v -> %+v", m, m2)
		}
	})
}
