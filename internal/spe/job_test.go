package spe

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"

	"flowkv/internal/binio"
	"flowkv/internal/core"
	"flowkv/internal/faultfs"
	"flowkv/internal/statebackend"
	"flowkv/internal/window"
)

// The pipeline crash battery: kill a checkpointed job at random points
// (including mid-checkpoint-commit and mid-recovery), resume it, and
// require the committed sink ledger to come out byte-identical to an
// uninterrupted golden run — exactly-once output under crashes.

// crashIters returns the per-pattern iteration count for the randomized
// battery. FLOWKV_CRASH_ITERS overrides (the CI schedule runs longer).
func crashIters(t *testing.T) int {
	if s := os.Getenv("FLOWKV_CRASH_ITERS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad FLOWKV_CRASH_ITERS %q", s)
		}
		return n
	}
	if testing.Short() {
		return 8
	}
	return 100
}

// crashTuples builds a deterministic stream: interleaved keys, gently
// increasing timestamps with periodic jumps large enough to close
// session windows mid-stream.
func crashTuples(n int) []Tuple {
	tuples := make([]Tuple, 0, n)
	ts := int64(0)
	for i := 0; i < n; i++ {
		ts += int64(1 + i%3)
		if i%97 == 0 {
			ts += 300
		}
		tuples = append(tuples, Tuple{
			Key:   []byte(fmt.Sprintf("k%02d", i%11)),
			Value: []byte(strconv.Itoa(i % 13)),
			TS:    ts,
		})
	}
	return tuples
}

// crashHolistic is order-independent (count + sum), so results do not
// depend on the store's value ordering.
var crashHolistic = HolisticFunc(func(key []byte, values [][]byte) []byte {
	sum := 0
	for _, v := range values {
		n, _ := strconv.Atoi(string(v))
		sum += n
	}
	return []byte(fmt.Sprintf("n=%d sum=%d", len(values), sum))
})

var crashIncremental = IncrementalFunc{
	AddFunc: func(acc []byte, t Tuple) []byte {
		a := 0
		if acc != nil {
			a, _ = strconv.Atoi(string(acc))
		}
		n, _ := strconv.Atoi(string(t.Value))
		return []byte(strconv.Itoa(a + n))
	},
	MergeFunc: func(a, b []byte) []byte {
		x, _ := strconv.Atoi(string(a))
		y, _ := strconv.Atoi(string(b))
		return []byte(strconv.Itoa(x + y))
	},
}

// crashPattern is one FlowKV store pattern exercised by the battery.
type crashPattern struct {
	name string
	agg  core.AggKind
	wk   window.Kind
	spec OperatorSpec
}

func crashPatterns() []crashPattern {
	fixed := window.FixedAssigner{Size: 64}
	sess := window.SessionAssigner{Gap: 100}
	return []crashPattern{
		{"AAR", core.AggHolistic, window.Fixed,
			OperatorSpec{Assigner: fixed, Holistic: crashHolistic}},
		{"AUR", core.AggHolistic, window.Session,
			OperatorSpec{Assigner: sess, Holistic: crashHolistic}},
		{"RMW", core.AggIncremental, window.Fixed,
			OperatorSpec{Assigner: fixed, Incremental: crashIncremental}},
	}
}

// crashPipeline builds the battery's two-stage pipeline: a stateless map
// stage feeding a parallelism-2 FlowKV window stage. bufBytes sizes the
// store write buffer; fsys, when non-nil, is the fault-injection seam
// for backend state I/O.
func crashPipeline(pat crashPattern, stateDir string, fsys faultfs.FS, bufBytes int64) *Pipeline {
	spec := pat.spec
	opts := core.Options{Instances: 2, WriteBufferBytes: bufBytes}
	if fsys != nil {
		opts.FS = fsys
	}
	return &Pipeline{
		WatermarkEvery: 25,
		Stages: []Stage{
			{
				Name: "tag", Parallelism: 2,
				Map: func(t Tuple, emit func(Tuple)) { emit(t) },
			},
			{
				Name: "win", Parallelism: 2,
				Window: &spec,
				NewBackend: func(w int) (statebackend.Backend, error) {
					return statebackend.Open(statebackend.Config{
						Kind:       statebackend.KindFlowKV,
						Dir:        filepath.Join(stateDir, fmt.Sprintf("w%02d", w)),
						Agg:        pat.agg,
						WindowKind: pat.wk,
						Assigner:   spec.Assigner,
						FlowKV:     opts,
					})
				},
			},
		},
	}
}

// goldenLedger runs the job uninterrupted and returns the raw committed
// ledger bytes.
func goldenLedger(t *testing.T, pat crashPattern, tuples []Tuple, every int, bufBytes int64) []byte {
	t.Helper()
	base := t.TempDir()
	job := &Job{
		Pipeline:        crashPipeline(pat, filepath.Join(base, "state"), nil, bufBytes),
		Source:          NewSliceSource(tuples),
		Dir:             filepath.Join(base, "job"),
		CheckpointEvery: every,
	}
	res, err := job.Run()
	if err != nil {
		t.Fatalf("golden run: %v", err)
	}
	if !res.Final {
		t.Fatal("golden run did not finish")
	}
	b, err := os.ReadFile(filepath.Join(base, "job", ledgerName))
	if err != nil {
		t.Fatalf("golden ledger: %v", err)
	}
	if len(b) == 0 {
		t.Fatal("golden run produced no sink output")
	}
	return b
}

// runOrResume starts a job that may or may not have committed progress.
func runOrResume(j *Job) (*JobResult, error) {
	if _, err := ReadJobMeta(j.fs(), j.Dir); err == nil {
		return j.Resume()
	}
	return j.Run()
}

// resumeToFinal drives a crashed job to completion, then checks its
// ledger against golden byte-for-byte.
func resumeToFinal(t *testing.T, mk func(kill int64) *Job, golden []byte) {
	t.Helper()
	var res *JobResult
	var err error
	for attempts := 0; ; attempts++ {
		if attempts > 30 {
			t.Fatal("job did not reach final state after 30 attempts")
		}
		res, err = runOrResume(mk(0))
		if err == nil {
			break
		}
		t.Fatalf("resume: %v", err)
	}
	if !res.Final {
		t.Fatal("job not final after clean resume")
	}
	checkLedger(t, mk(0).Dir, golden)
}

func checkLedger(t *testing.T, jobDir string, golden []byte) {
	t.Helper()
	got, err := os.ReadFile(filepath.Join(jobDir, ledgerName))
	if err != nil {
		t.Fatalf("read ledger: %v", err)
	}
	if !bytes.Equal(got, golden) {
		t.Fatalf("ledger diverges from golden: %d bytes vs %d", len(got), len(golden))
	}
}

// TestJobCrashResumeExactlyOnce is the randomized kill battery: each
// iteration kills the job after a random number of tuples (possibly
// several times across resumes) and requires the final ledger to match
// the uninterrupted golden run exactly.
func TestJobCrashResumeExactlyOnce(t *testing.T) {
	iters := crashIters(t)
	tuples := crashTuples(600)
	const every = 97
	for _, pat := range crashPatterns() {
		pat := pat
		t.Run(pat.name, func(t *testing.T) {
			t.Parallel()
			golden := goldenLedger(t, pat, tuples, every, 1<<10)
			rng := rand.New(rand.NewSource(int64(0xf10c + len(pat.name)*7919)))
			base := t.TempDir()
			for i := 0; i < iters; i++ {
				dir := filepath.Join(base, fmt.Sprintf("i%03d", i))
				src := NewSliceSource(tuples)
				mk := func(kill int64) *Job {
					return &Job{
						Pipeline:        crashPipeline(pat, filepath.Join(dir, "state"), nil, 1<<10),
						Source:          src,
						Dir:             filepath.Join(dir, "job"),
						CheckpointEvery: every,
						KillAfterTuples: kill,
					}
				}
				res, err := mk(1 + rng.Int63n(int64(len(tuples)))).Run()
				for attempts := 0; err != nil; attempts++ {
					if !errors.Is(err, ErrJobKilled) {
						t.Fatalf("iter %d: unexpected error: %v", i, err)
					}
					if attempts > 30 {
						t.Fatalf("iter %d: still killed after %d attempts", i, attempts)
					}
					var kill int64
					if rng.Intn(2) == 0 {
						kill = 1 + rng.Int63n(int64(len(tuples)))
					}
					res, err = runOrResume(mk(kill))
				}
				if !res.Final {
					t.Fatalf("iter %d: job not final", i)
				}
				checkLedger(t, filepath.Join(dir, "job"), golden)
			}
		})
	}
}

// TestJobCrashDuringCommit crashes the filesystem in the middle of the
// checkpoint commit protocol itself — while renaming a generation's
// store checkpoint, while renaming the JOB file, and while syncing the
// ledger — and requires resume to land on the previous committed cut
// and still converge to the golden ledger.
func TestJobCrashDuringCommit(t *testing.T) {
	tuples := crashTuples(400)
	const every = 61
	pat := crashPatterns()[0] // AAR
	golden := goldenLedger(t, pat, tuples, every, 1<<10)
	legs := []struct {
		name string
		rule faultfs.Rule
	}{
		{"checkpoint-rename", faultfs.Rule{Op: faultfs.OpRename, PathContains: "gen-", Crash: true}},
		{"second-checkpoint-rename", faultfs.Rule{Op: faultfs.OpRename, PathContains: "gen-", Nth: 7, Crash: true}},
		{"job-commit-rename", faultfs.Rule{Op: faultfs.OpRename, PathContains: "JOB", Crash: true}},
		{"ledger-sync", faultfs.Rule{Op: faultfs.OpSync, PathContains: ledgerName, Crash: true}},
	}
	for _, leg := range legs {
		leg := leg
		t.Run(leg.name, func(t *testing.T) {
			t.Parallel()
			base := t.TempDir()
			inj := faultfs.NewInjector(faultfs.OS)
			src := NewSliceSource(tuples)
			mk := func() *Job {
				return &Job{
					Pipeline:        crashPipeline(pat, filepath.Join(base, "state"), inj, 1<<10),
					Source:          src,
					Dir:             filepath.Join(base, "job"),
					FS:              inj,
					CheckpointEvery: every,
				}
			}
			inj.SetRule(leg.rule)
			if _, err := mk().Run(); err == nil {
				t.Fatal("run survived a crashed filesystem")
			}
			if !inj.Fired() {
				t.Fatal("fault did not fire")
			}
			inj.Reset()
			resumeToFinal(t, func(int64) *Job { return mk() }, golden)
		})
	}
}

// TestJobCrashDuringRecovery crashes the filesystem again while the job
// is being resumed; the committed cut must survive and a second resume
// must complete to the golden ledger.
func TestJobCrashDuringRecovery(t *testing.T) {
	tuples := crashTuples(400)
	const every = 61
	pat := crashPatterns()[1] // AUR
	golden := goldenLedger(t, pat, tuples, every, 1<<10)
	base := t.TempDir()
	inj := faultfs.NewInjector(faultfs.OS)
	src := NewSliceSource(tuples)
	mk := func(kill int64) *Job {
		return &Job{
			Pipeline:        crashPipeline(pat, filepath.Join(base, "state"), inj, 1<<10),
			Source:          src,
			Dir:             filepath.Join(base, "job"),
			FS:              inj,
			CheckpointEvery: every,
			KillAfterTuples: kill,
		}
	}
	// Establish committed progress, then kill.
	res, err := mk(250).Run()
	if !errors.Is(err, ErrJobKilled) {
		t.Fatalf("want ErrJobKilled, got %v", err)
	}
	if res.Gen == 0 {
		t.Fatal("no checkpoint committed before the kill")
	}
	// Crash early into the resume (backend rebuild / ledger truncate).
	inj.Reset()
	inj.SetRule(faultfs.Rule{AtOp: inj.Ops() + 5, Crash: true})
	if _, err := mk(0).Resume(); err == nil {
		t.Fatal("resume survived a crashed filesystem")
	}
	if !inj.Fired() {
		t.Fatal("recovery fault did not fire")
	}
	// And crash once more, later into the replay.
	inj.Reset()
	inj.SetRule(faultfs.Rule{AtOp: inj.Ops() + 40, Crash: true})
	if _, err := mk(0).Resume(); err == nil {
		t.Fatal("second resume survived a crashed filesystem")
	}
	inj.Reset()
	resumeToFinal(t, mk, golden)
}

// TestJobSelfHealRetriesCheckpoint injects a transient write failure
// into the store's live-log flush during a barrier checkpoint: the store
// degrades, the background self-healer recovers it (rewriting the
// buffered tail at the durable offset), the job retries the checkpoint
// once, and the run completes with golden output — a transient fault
// survived without restarting the pipeline. AUR is the pattern whose
// checkpoint flushes and compacts the live logs, so the fault lands on
// the degrade path rather than being confined to the snapshot directory
// (AAR absorbs flush faults with its in-memory fallback and stays
// Healthy; RMW checkpoints never write to the live logs at all).
func TestJobSelfHealRetriesCheckpoint(t *testing.T) {
	tuples := crashTuples(400)
	const every = 61
	pat := crashPatterns()[1] // AUR
	// Large write buffer: no flush during ingest, so the live-log write
	// fault can only fire inside a checkpoint's flush.
	golden := goldenLedger(t, pat, tuples, every, 1<<20)
	base := t.TempDir()
	inj := faultfs.NewInjector(faultfs.OS)
	job := &Job{
		Pipeline:        crashPipeline(pat, filepath.Join(base, "state"), inj, 1<<20),
		Source:          NewSliceSource(tuples),
		Dir:             filepath.Join(base, "job"),
		CheckpointEvery: every,
		SelfHeal:        &core.SelfHealOptions{},
	}
	// Arm the fault once the stores are open and ingest is underway, so
	// it cannot hit the open path.
	job.Pipeline.StatsEvery = 30
	armed := false
	job.Pipeline.OnStats = func(StatsReport) {
		if !armed {
			armed = true
			inj.SetRule(faultfs.Rule{Op: faultfs.OpWrite, PathContains: "state",
				Class: faultfs.ClassTransient, Times: 4})
		}
	}
	res, err := job.Run()
	if err != nil {
		t.Fatalf("run with self-heal: %v", err)
	}
	if !res.Final {
		t.Fatal("job not final")
	}
	if !inj.Fired() {
		t.Fatal("flush fault did not fire")
	}
	var recoveries int64
	for _, bs := range res.Backends {
		recoveries += bs.Recoveries
	}
	if recoveries == 0 {
		t.Fatal("self-healer recorded no recoveries")
	}
	checkLedger(t, filepath.Join(base, "job"), golden)
}

// TestOperatorSnapshotRoundTrip checks the operator snapshot codec:
// restoring a snapshot into a fresh operator and snapshotting again must
// reproduce identical bytes for every window kind the codec covers.
func TestOperatorSnapshotRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		spec OperatorSpec
	}{
		{"aligned", OperatorSpec{Assigner: window.FixedAssigner{Size: 50}, Holistic: crashHolistic}},
		{"session", OperatorSpec{Assigner: window.SessionAssigner{Gap: 30}, Holistic: crashHolistic}},
		{"count", OperatorSpec{Assigner: window.CountAssigner{Size: 7}, Incremental: crashIncremental}},
		{"custom", OperatorSpec{Assigner: window.CustomAssigner{AssignFunc: func(ts int64) []window.Window {
			start := ts / 40 * 40
			return []window.Window{{Start: start, End: start + 40}}
		}}, Holistic: crashHolistic}},
	}
	tuples := crashTuples(300)
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			op, err := NewWindowOperator(tc.spec, memBackend(t), func(Tuple) {})
			if err != nil {
				t.Fatal(err)
			}
			for i, tp := range tuples {
				if err := op.OnTuple(tp); err != nil {
					t.Fatal(err)
				}
				if i%40 == 39 {
					if err := op.OnWatermark(tp.TS-20, 0); err != nil {
						t.Fatal(err)
					}
				}
			}
			snap := op.snapshotState()
			fresh, err := NewWindowOperator(tc.spec, memBackend(t), func(Tuple) {})
			if err != nil {
				t.Fatal(err)
			}
			if err := fresh.restoreState(snap); err != nil {
				t.Fatal(err)
			}
			again := fresh.snapshotState()
			if !bytes.Equal(snap, again) {
				t.Fatalf("snapshot not stable across restore: %d bytes vs %d", len(snap), len(again))
			}
			if err := fresh.restoreState([]byte("garbage")); err == nil {
				t.Fatal("restore accepted garbage")
			}
		})
	}
}

// TestJobMetaRoundTrip covers the JOB file codec and its crash
// atomicity guarantees at the unit level.
func TestJobMetaRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := JobMeta{Gen: 42, Final: true, Offset: 1234, TuplesIn: 5678, MaxTS: 99, SinceWM: 7, LedgerLen: 4096, StagePars: []int64{1, 3, 2}}
	if err := writeJobMeta(faultfs.OS, dir, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJobMeta(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("meta round trip: got %+v want %+v", got, m)
	}
	// A v1 JOB file (no key-range manifest) still decodes; the manifest
	// comes back empty and the layout is recovered from the generation
	// directory scan instead.
	v1 := []byte(jobMetaMagicV1)
	v1 = binio.PutVarint(v1, m.Gen)
	v1 = binio.PutVarint(v1, 1)
	v1 = binio.PutVarint(v1, m.Offset)
	v1 = binio.PutVarint(v1, m.TuplesIn)
	v1 = binio.PutVarint(v1, m.MaxTS)
	v1 = binio.PutVarint(v1, m.SinceWM)
	v1 = binio.PutVarint(v1, m.LedgerLen)
	if err := os.WriteFile(filepath.Join(dir, jobMetaName), binio.AppendRecord(nil, v1), 0o644); err != nil {
		t.Fatal(err)
	}
	gotV1, err := ReadJobMeta(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	wantV1 := m
	wantV1.StagePars = nil
	if !reflect.DeepEqual(gotV1, wantV1) {
		t.Fatalf("v1 meta decode: got %+v want %+v", gotV1, wantV1)
	}
	// A corrupt JOB file is detected, not silently accepted.
	if err := os.WriteFile(filepath.Join(dir, jobMetaName), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJobMeta(nil, dir); err == nil {
		t.Fatal("corrupt JOB file accepted")
	}
}

// TestJobGenerationsChainIncrementally is the SPE leg of the
// incremental-checkpoint battery: every barrier commit after the first
// generation must go through the delta path, chaining on the previous
// generation's checkpoint of the same worker. The chain crosses
// generation directories, so the MANIFEST records depth but no sibling
// parent name; every committed checkpoint still verifies standalone
// (hard links keep it self-contained even though clearGens deletes the
// parent generation right after the commit).
func TestJobGenerationsChainIncrementally(t *testing.T) {
	tuples := crashTuples(600)
	const every = 97
	for _, pat := range crashPatterns() {
		pat := pat
		t.Run(pat.name, func(t *testing.T) {
			base := t.TempDir()
			job := &Job{
				Pipeline:        crashPipeline(pat, filepath.Join(base, "state"), nil, 1<<10),
				Source:          NewSliceSource(tuples),
				Dir:             filepath.Join(base, "job"),
				CheckpointEvery: every,
			}
			res, err := job.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !res.Final {
				t.Fatal("job did not finish")
			}
			meta, err := ReadJobMeta(nil, job.Dir)
			if err != nil {
				t.Fatal(err)
			}
			if meta.Gen < 2 {
				t.Fatalf("job committed only generation %d; the chain was never exercised", meta.Gen)
			}
			genDir := filepath.Join(job.Dir, genDirName(meta.Gen))
			infos, err := core.ListCheckpoints(nil, genDir)
			if err != nil {
				t.Fatal(err)
			}
			if len(infos) == 0 {
				t.Fatalf("no checkpoints in committed generation %s", genDir)
			}
			for _, ci := range infos {
				if ci.Err != nil {
					t.Errorf("%s fails verification: %v", ci.Path, ci.Err)
				}
				if ci.Depth < 1 {
					t.Errorf("%s has depth %d: generation %d did not chain on its predecessor",
						ci.Path, ci.Depth, meta.Gen)
				}
				if ci.Parent != "" {
					t.Errorf("%s records sibling parent %q; cross-generation parents must not be recorded as siblings",
						ci.Path, ci.Parent)
				}
				if _, cerr := core.CheckpointChain(nil, ci.Path); cerr != nil {
					t.Errorf("chain walk of %s: %v", ci.Path, cerr)
				}
			}
		})
	}
}
