package spe

import (
	"container/heap"
	"fmt"
	"sort"

	"flowkv/internal/binio"
	"flowkv/internal/statebackend"
	"flowkv/internal/window"
)

// Side labels the two inputs of a two-stream join.
type Side byte

// Join sides.
const (
	Left  Side = 'L'
	Right Side = 'R'
)

// IntervalJoinSpec describes an event-time interval join (the paper's §8
// "interval join operations" extension): for every left tuple a and right
// tuple b sharing a key, a joins b iff
//
//	a.TS + Lower <= b.TS <= a.TS + Upper.
//
// Both sides buffer their tuples in windowed state, bucketed into fixed
// time buckets so expiry is a whole-bucket drop — the coarse-grained
// cleanup FlowKV's layouts are good at. Probes use non-destructive reads
// (Backend.PeekAppended).
type IntervalJoinSpec struct {
	// Lower and Upper are the relative bounds in ms; Lower <= Upper.
	Lower, Upper int64
	// BucketMs sizes the state buckets. Default max(Upper-Lower, 1).
	BucketMs int64
	// SideOf classifies an input tuple; its value payload is buffered.
	SideOf func(t Tuple) Side
	// Join combines one matched pair into an output value; returning nil
	// emits nothing for the pair.
	Join func(key, leftVal, rightVal []byte, leftTS, rightTS int64) []byte
}

// Validate checks the spec is well-formed.
func (s *IntervalJoinSpec) Validate() error {
	if s.Lower > s.Upper {
		return fmt.Errorf("spe: interval join: Lower > Upper")
	}
	if s.SideOf == nil || s.Join == nil {
		return fmt.Errorf("spe: interval join: SideOf and Join are required")
	}
	return nil
}

func (s *IntervalJoinSpec) bucketMs() int64 {
	if s.BucketMs > 0 {
		return s.BucketMs
	}
	if d := s.Upper - s.Lower; d > 0 {
		return d
	}
	return 1
}

// IntervalJoinOperator executes an interval join on one key partition.
// Each side's tuples are appended to (side-prefixed key, time bucket)
// state; an arriving tuple probes the opposite side's overlapping
// buckets, and buckets are dropped wholesale once the watermark passes
// their retention horizon.
type IntervalJoinOperator struct {
	spec    IntervalJoinSpec
	backend statebackend.Backend
	emit    func(Tuple)
	wm      int64

	// Per-side live bucket registries and expiry heaps. Buckets are
	// tracked per key so expiry can Drop each (key, bucket) state.
	buckets map[Side]map[window.Window]map[string]struct{}
	expiry  map[Side]*windowHeap

	results int64
	late    int64
}

// NewIntervalJoinOperator builds a join operator over the given backend.
// The backend must support appended state with non-destructive reads; a
// FlowKV backend should be opened as holistic + custom windows (AUR).
func NewIntervalJoinOperator(spec IntervalJoinSpec, backend statebackend.Backend, emit func(Tuple)) (*IntervalJoinOperator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	o := &IntervalJoinOperator{
		spec:    spec,
		backend: backend,
		emit:    emit,
		wm:      -1 << 62,
		buckets: map[Side]map[window.Window]map[string]struct{}{
			Left:  make(map[window.Window]map[string]struct{}),
			Right: make(map[window.Window]map[string]struct{}),
		},
		expiry: map[Side]*windowHeap{Left: {}, Right: {}},
	}
	return o, nil
}

// Backend returns the operator's state backend.
func (o *IntervalJoinOperator) Backend() statebackend.Backend { return o.backend }

// setBackend replaces the operator's state backend. Live migration uses
// it after rebuilding a worker's store under an aligned barrier; the
// caller guarantees the worker goroutine is parked while it runs.
func (o *IntervalJoinOperator) setBackend(b statebackend.Backend) { o.backend = b }

func (o *IntervalJoinOperator) bucketOf(ts int64) window.Window {
	b := o.spec.bucketMs()
	start := ts / b * b
	if ts < 0 && ts%b != 0 {
		start -= b
	}
	return window.Window{Start: start, End: start + b}
}

// sideKey prefixes the user key with the side tag so both sides share one
// backend instance without colliding.
func sideKey(side Side, key []byte) []byte {
	out := make([]byte, 0, len(key)+1)
	out = append(out, byte(side))
	return append(out, key...)
}

// sideKeyUser recovers the user key from a side-prefixed backend key.
// Anything that routes join state by key hash (worker assignment,
// rescale re-routing) must hash the user key, not the tagged one —
// 'L'+k and k hash to different workers.
func sideKeyUser(k []byte) []byte {
	if len(k) > 0 {
		return k[1:]
	}
	return k
}

// encJoinVal prepends the tuple timestamp to the buffered payload so
// probes can apply the exact interval bounds inside a bucket.
func encJoinVal(ts int64, payload []byte) []byte {
	out := binio.PutVarint(nil, ts)
	return append(out, payload...)
}

func decJoinVal(v []byte) (ts int64, payload []byte, err error) {
	ts, n, err := binio.Varint(v)
	if err != nil {
		return 0, nil, err
	}
	return ts, v[n:], nil
}

// OnTuple buffers the tuple on its side and probes the opposite side.
func (o *IntervalJoinOperator) OnTuple(t Tuple) error {
	side := o.spec.SideOf(t)
	if side != Left && side != Right {
		return fmt.Errorf("spe: interval join: bad side %q", side)
	}
	if t.TS < o.wm {
		o.late++
		return nil
	}
	// Buffer.
	bucket := o.bucketOf(t.TS)
	reg := o.buckets[side]
	keys := reg[bucket]
	if keys == nil {
		keys = make(map[string]struct{})
		reg[bucket] = keys
		heap.Push(o.expiry[side], bucket)
	}
	keys[string(t.Key)] = struct{}{}
	if err := o.backend.Append(sideKey(side, t.Key), encJoinVal(t.TS, t.Value), bucket, t.TS); err != nil {
		return err
	}
	// Probe the opposite side: the matching timestamp range.
	var lo, hi int64
	var other Side
	if side == Left {
		other = Right
		lo, hi = t.TS+o.spec.Lower, t.TS+o.spec.Upper
	} else {
		other = Left
		lo, hi = t.TS-o.spec.Upper, t.TS-o.spec.Lower
	}
	b := o.spec.bucketMs()
	for bs := o.bucketOf(lo).Start; bs <= hi; bs += b {
		probe := window.Window{Start: bs, End: bs + b}
		if reg := o.buckets[other][probe]; reg != nil {
			if _, ok := reg[string(t.Key)]; !ok {
				continue
			}
		} else {
			continue
		}
		vals, err := o.backend.PeekAppended(sideKey(other, t.Key), probe)
		if err != nil {
			return err
		}
		for _, v := range vals {
			ots, payload, err := decJoinVal(v)
			if err != nil {
				return err
			}
			if ots < lo || ots > hi {
				continue
			}
			var out []byte
			if side == Left {
				out = o.spec.Join(t.Key, t.Value, payload, t.TS, ots)
			} else {
				out = o.spec.Join(t.Key, payload, t.Value, ots, t.TS)
			}
			if out != nil {
				ts := t.TS
				if ots > ts {
					ts = ots
				}
				o.results++
				o.emit(Tuple{Key: t.Key, Value: out, TS: ts, WallNS: t.WallNS})
			}
		}
	}
	return nil
}

// OnWatermark expires buckets that can no longer join: a left tuple a is
// dead once wm > a.TS + Upper; a right tuple b once wm > b.TS - Lower.
func (o *IntervalJoinOperator) OnWatermark(wm int64, _ int64) error {
	if wm <= o.wm {
		return nil
	}
	o.wm = wm
	if err := o.expire(Left, wm-o.spec.Upper); err != nil {
		return err
	}
	return o.expire(Right, wm+o.spec.Lower)
}

// expire drops every bucket of side whose end is <= horizon.
func (o *IntervalJoinOperator) expire(side Side, horizon int64) error {
	h := o.expiry[side]
	for h.Len() > 0 && (*h)[0].End <= horizon {
		bucket := heap.Pop(h).(window.Window)
		keys := o.buckets[side][bucket]
		delete(o.buckets[side], bucket)
		for k := range keys {
			if err := o.backend.DropAppended(sideKey(side, []byte(k)), bucket); err != nil {
				return err
			}
		}
	}
	return nil
}

// Finish drops all remaining state (end of stream: no more matches).
func (o *IntervalJoinOperator) Finish(int64) error {
	return o.OnWatermark(window.MaxTime, 0)
}

// joinSnapMagic versions the interval-join operator snapshot encoding.
const joinSnapMagic = "flowkv-joinsnap1\n"

// snapshotState serializes the join operator's control state: the
// watermark, the counters, and both sides' live bucket registries; the
// expiry heaps are re-derived on restore. No emitted-pair frontier is
// needed: snapshots are taken at aligned barriers, where every
// pre-barrier emission is already committed in the sink ledger, and a
// replay from the barrier regenerates exactly the post-barrier pairs
// (expiry never removes a value that could still match a future tuple,
// so probes see the same state they saw live).
func (o *IntervalJoinOperator) snapshotState() []byte {
	b := []byte(joinSnapMagic)
	b = binio.PutVarint(b, o.wm)
	b = binio.PutVarint(b, o.results)
	b = binio.PutVarint(b, o.late)
	for _, side := range []Side{Left, Right} {
		reg := o.buckets[side]
		wins := make([]window.Window, 0, len(reg))
		for w := range reg {
			wins = append(wins, w)
		}
		sort.Slice(wins, func(i, j int) bool { return wins[i].Before(wins[j]) })
		b = binio.PutUvarint(b, uint64(len(wins)))
		for _, w := range wins {
			b = w.AppendTo(b)
			keys := sortedKeys(reg[w])
			b = binio.PutUvarint(b, uint64(len(keys)))
			for _, k := range keys {
				b = binio.PutString(b, k)
			}
		}
	}
	return b
}

// restoreState rebuilds the join operator's control state from a
// snapshot. The operator must be freshly constructed; the expiry heaps
// are rebuilt from the bucket registries.
func (o *IntervalJoinOperator) restoreState(b []byte) error {
	d := snapDecoder{b: b}
	if err := d.magic(joinSnapMagic); err != nil {
		return err
	}
	o.wm = d.varint()
	o.results = d.varint()
	o.late = d.varint()
	o.buckets = map[Side]map[window.Window]map[string]struct{}{
		Left:  make(map[window.Window]map[string]struct{}),
		Right: make(map[window.Window]map[string]struct{}),
	}
	o.expiry = map[Side]*windowHeap{Left: {}, Right: {}}
	for _, side := range []Side{Left, Right} {
		for n := d.uvarint(); n > 0; n-- {
			w := d.window()
			set := make(map[string]struct{})
			for kn := d.uvarint(); kn > 0; kn-- {
				set[d.str()] = struct{}{}
			}
			if d.err != nil {
				break
			}
			o.buckets[side][w] = set
			heap.Push(o.expiry[side], w)
		}
	}
	if d.err != nil {
		return fmt.Errorf("spe: corrupt join snapshot: %w", d.err)
	}
	return nil
}

// JoinStats reports the operator's counters.
type JoinStats struct {
	// Results counts emitted joined pairs.
	Results int64
	// LateDropped counts tuples dropped as late.
	LateDropped int64
}

// Stats returns the operator's counters.
func (o *IntervalJoinOperator) Stats() JoinStats {
	return JoinStats{Results: o.results, LateDropped: o.late}
}
