package spe

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"flowkv/internal/core"
	"flowkv/internal/statebackend"
	"flowkv/internal/window"
)

func joinSpec(lower, upper int64) IntervalJoinSpec {
	return IntervalJoinSpec{
		Lower: lower,
		Upper: upper,
		SideOf: func(t Tuple) Side {
			return Side(t.Value[0])
		},
		Join: func(key, l, r []byte, lts, rts int64) []byte {
			return []byte(fmt.Sprintf("%s:%d|%s:%d", l[1:], lts, r[1:], rts))
		},
	}
}

func sideTuple(key string, side Side, payload string, ts int64) Tuple {
	return Tuple{Key: []byte(key), Value: append([]byte{byte(side)}, payload...), TS: ts}
}

func runJoin(t *testing.T, spec IntervalJoinSpec, backend statebackend.Backend,
	tuples []Tuple, wms []int64) []string {
	t.Helper()
	var out []string
	op, err := NewIntervalJoinOperator(spec, backend, func(tp Tuple) {
		out = append(out, string(tp.Value))
	})
	if err != nil {
		t.Fatal(err)
	}
	wi := 0
	for _, tp := range tuples {
		if err := op.OnTuple(tp); err != nil {
			t.Fatal(err)
		}
		for wi < len(wms) && wms[wi] <= tp.TS {
			if err := op.OnWatermark(wms[wi], 0); err != nil {
				t.Fatal(err)
			}
			wi++
		}
	}
	if err := op.Finish(0); err != nil {
		t.Fatal(err)
	}
	backend.Destroy()
	sort.Strings(out)
	return out
}

func TestIntervalJoinBasic(t *testing.T) {
	// b joins a iff b.TS in [a.TS-5, a.TS+5].
	spec := joinSpec(-5, 5)
	tuples := []Tuple{
		sideTuple("k", Left, "a1", 10),
		sideTuple("k", Right, "b1", 12), // in range of a1
		sideTuple("k", Right, "b2", 20), // out of range
		sideTuple("k", Left, "a2", 24),  // in range of b2
	}
	got := runJoin(t, spec, memBackend(t), tuples, nil)
	want := []string{"a1:10|b1:12", "a2:24|b2:20"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("joins = %v, want %v", got, want)
	}
}

func TestIntervalJoinKeyIsolation(t *testing.T) {
	spec := joinSpec(-100, 100)
	tuples := []Tuple{
		sideTuple("k1", Left, "a", 10),
		sideTuple("k2", Right, "b", 10), // same time, different key
	}
	if got := runJoin(t, spec, memBackend(t), tuples, nil); len(got) != 0 {
		t.Fatalf("cross-key join: %v", got)
	}
}

func TestIntervalJoinAsymmetricBounds(t *testing.T) {
	// Right must be 1..10 after left (e.g. click after impression).
	spec := joinSpec(1, 10)
	tuples := []Tuple{
		sideTuple("k", Left, "imp", 100),
		sideTuple("k", Right, "early", 100), // not > left
		sideTuple("k", Right, "hit", 105),
		sideTuple("k", Right, "late", 111), // beyond upper
	}
	got := runJoin(t, spec, memBackend(t), tuples, nil)
	if len(got) != 1 || got[0] != "imp:100|hit:105" {
		t.Fatalf("joins = %v", got)
	}
}

func TestIntervalJoinStateExpiry(t *testing.T) {
	spec := joinSpec(-10, 10)
	backend := memBackend(t)
	var out []string
	op, err := NewIntervalJoinOperator(spec, backend, func(tp Tuple) {
		out = append(out, string(tp.Value))
	})
	if err != nil {
		t.Fatal(err)
	}
	op.OnTuple(sideTuple("k", Left, "old", 0))
	// Watermark far past old's join horizon (0+10): state expires.
	if err := op.OnWatermark(1000, 0); err != nil {
		t.Fatal(err)
	}
	// A right tuple that WOULD have matched if state lingered; it is
	// late anyway, but even an in-range probe must find nothing.
	op.OnTuple(sideTuple("k", Right, "probe", 1005))
	if len(out) != 0 {
		t.Fatalf("expired state joined: %v", out)
	}
	backend.Destroy()
}

func TestIntervalJoinLateTuplesDropped(t *testing.T) {
	spec := joinSpec(-10, 10)
	backend := memBackend(t)
	op, err := NewIntervalJoinOperator(spec, backend, func(Tuple) {})
	if err != nil {
		t.Fatal(err)
	}
	op.OnWatermark(100, 0)
	op.OnTuple(sideTuple("k", Left, "late", 50))
	if st := op.Stats(); st.LateDropped != 1 {
		t.Errorf("LateDropped = %d", st.LateDropped)
	}
	backend.Destroy()
}

func TestIntervalJoinSpecValidation(t *testing.T) {
	bad := IntervalJoinSpec{Lower: 10, Upper: 5}
	if _, err := NewIntervalJoinOperator(bad, nil, nil); err == nil {
		t.Error("Lower > Upper accepted")
	}
	if _, err := NewIntervalJoinOperator(IntervalJoinSpec{}, nil, nil); err == nil {
		t.Error("missing funcs accepted")
	}
}

// TestIntervalJoinAllBackendsAgainstBruteForce drives a randomized
// two-sided stream through the join on every backend and compares against
// an O(n²) reference join.
func TestIntervalJoinAllBackendsAgainstBruteForce(t *testing.T) {
	const lower, upper = -7, 13
	rng := rand.New(rand.NewSource(21))
	var tuples []Tuple
	type rec struct {
		key     string
		side    Side
		payload string
		ts      int64
	}
	var recs []rec
	ts := int64(0)
	for i := 0; i < 600; i++ {
		ts += int64(rng.Intn(4))
		side := Left
		if rng.Intn(2) == 0 {
			side = Right
		}
		r := rec{
			key:     fmt.Sprintf("k%d", rng.Intn(5)),
			side:    side,
			payload: fmt.Sprintf("p%03d", i),
			ts:      ts,
		}
		recs = append(recs, r)
		tuples = append(tuples, sideTuple(r.key, r.side, r.payload, r.ts))
	}
	// Brute-force reference.
	var want []string
	for _, a := range recs {
		if a.side != Left {
			continue
		}
		for _, b := range recs {
			if b.side != Right || b.key != a.key {
				continue
			}
			if b.ts >= a.ts+lower && b.ts <= a.ts+upper {
				want = append(want, fmt.Sprintf("%s:%d|%s:%d", a.payload, a.ts, b.payload, b.ts))
			}
		}
	}
	sort.Strings(want)
	if len(want) == 0 {
		t.Fatal("degenerate test: no expected joins")
	}

	for _, kind := range statebackend.Kinds() {
		t.Run(string(kind), func(t *testing.T) {
			backend, err := statebackend.Open(statebackend.Config{
				Kind:       kind,
				Dir:        filepath.Join(t.TempDir(), string(kind)),
				Agg:        core.AggHolistic,
				WindowKind: window.Custom, // AUR for FlowKV
				FlowKV:     core.Options{WriteBufferBytes: 4 << 10, Instances: 2},
			})
			if err != nil {
				t.Fatal(err)
			}
			got := runJoin(t, joinSpec(lower, upper), backend, tuples, []int64{100, 300, 500})
			if len(got) != len(want) {
				t.Fatalf("%d joins, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("join %d = %q, want %q", i, got[i], want[i])
				}
			}
		})
	}
}

func TestIntervalJoinInPipeline(t *testing.T) {
	spec := joinSpec(-50, 50)
	pipe := &Pipeline{
		Stages: []Stage{{
			Name:        "join",
			Parallelism: 2,
			Join:        &spec,
			NewBackend: func(int) (statebackend.Backend, error) {
				return statebackend.Open(statebackend.Config{Kind: statebackend.KindInMem})
			},
		}},
		WatermarkEvery: 20,
	}
	source := func(emit func(Tuple)) {
		for i := 0; i < 500; i++ {
			key := fmt.Sprintf("k%d", i%10)
			emit(sideTuple(key, Left, fmt.Sprintf("L%d", i), int64(i*10)))
			emit(sideTuple(key, Right, fmt.Sprintf("R%d", i), int64(i*10+5)))
		}
	}
	var mu sync.Mutex
	var n int
	res, err := Run(pipe, source, func(Tuple) {
		mu.Lock()
		n++
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each Left i joins Right i (+5 in range); neighbours are 100 apart
	// per key (out of ±50).
	if n != 500 {
		t.Fatalf("pipeline joins = %d, want 500", n)
	}
	if res.Operators[0].ResultsEmitted != 500 {
		t.Errorf("stats ResultsEmitted = %d", res.Operators[0].ResultsEmitted)
	}
}
