package spe

import (
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"strings"

	"flowkv/internal/binio"
	"flowkv/internal/core"
	"flowkv/internal/faultfs"
	"flowkv/internal/statebackend"
	"flowkv/internal/window"
)

// Live key-range migration. A running job can hand one hash bucket of a
// private stateful stage from its current owner to another worker
// without stopping the stream — the mechanism an autoscaler needs to
// chase load instead of waiting for a restart (see DESIGN.md §15).
//
// The protocol is two-phase, and every phase boundary is durable:
//
//   PREPARE (concurrent with the stream): the source worker's committed
//   checkpoint is cloned into a per-migration staging directory via its
//   segment manifest — sealed segments arrive as hard links, so the
//   transfer cost tracks the moved worker's file count, not the job's
//   state size — and the staged clone is CRC-verified, which doubles as
//   a destination-media probe. Any failure here aborts: the journal
//   records it, the staging area is removed, and the job never noticed.
//
//   COMMIT (under an aligned barrier, every worker parked): the live
//   source store is sealed with one delta cut priced against the staged
//   base, a rollback cut of the destination is taken, then the moved
//   bucket's state is split out — store entries re-appended into the
//   destination's live store, the rest rebuilt into a fresh source
//   store, operator control state split and merged the same way — and
//   the in-memory routing table flips. The JOB v3 rename of the very
//   next checkpoint persists the flipped table and is the migration's
//   single commit point: a crash at any earlier instant resumes from
//   the previous generation with the source still owning the bucket
//   (automatic abort), a crash after it resumes with the destination
//   owning it. Nothing in between is observable.
//
//   ABORT: any COMMIT-phase failure before the flip rolls the two
//   workers back from their cuts (the source store is rebuilt
//   bit-equivalently from the sealed cut, the destination from its
//   rollback cut) and the job keeps running with ownership unchanged.
//
// The journal (MIGRATIONS, atomic-rename replaced) records every
// attempt; resume reconciles in-flight records against the committed
// routing table — flipped means committed, anything else aborts — and
// clears staging debris, so the protocol is idempotent under crashes at
// every step.

// Migration schedules one live key-range handoff inside a Job: hash
// bucket Bucket of stage Stage moves from its current owner to worker
// To, starting at the first checkpoint after the source has passed
// AfterOffset. A migration whose bucket already lives on To is a no-op;
// a failed attempt is not retried within the run but is re-attempted by
// a later Resume (the routing table still shows it pending).
type Migration struct {
	// Stage is the pipeline stage index; it must name a private stateful
	// stage (window or join, not shared-backend, not Map).
	Stage int
	// Bucket is the hash bucket to move: the keys with
	// routeKey(key, par) == Bucket.
	Bucket int
	// To is the destination worker index.
	To int
	// AfterOffset delays the handoff until the source offset reaches it;
	// 0 starts at the first eligible checkpoint.
	AfterOffset int64
}

// Migration journal file names and framing inside Job.Dir.
const (
	// MigJournalName is the migration journal file in a job directory.
	MigJournalName  = "MIGRATIONS"
	migJournalMagic = "flowkv-mig1\n"
	migDirPrefix    = "mig-"
	migScratchName  = ".migscratch"
)

// Migration record states, in protocol order.
const (
	// MigStatePreparing: staging clone in flight; aborts on resume.
	MigStatePreparing = "preparing"
	// MigStatePrepared: staged clone verified; the handoff commits with
	// the next JOB rename or not at all.
	MigStatePrepared = "prepared"
	// MigStateCommitted: the routing flip is durable.
	MigStateCommitted = "committed"
	// MigStateAborted: the source kept the bucket; Detail says why.
	MigStateAborted = "aborted"
)

// MigrationRecord is one journaled migration attempt.
type MigrationRecord struct {
	// Seq is the attempt's unique sequence number; its staging directory
	// is mig-<Seq> under the job dir.
	Seq int64
	// Stage, Bucket, From and To identify the handoff.
	Stage, Bucket, From, To int
	// BaseGen is the committed generation the staged clone was taken of.
	BaseGen int64
	// State is the protocol state (MigState* constants).
	State string
	// Detail carries the abort reason, if any.
	Detail string
}

func migDir(dir string, seq int64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%06d", migDirPrefix, seq))
}

func encodeMigrationJournal(recs []MigrationRecord) []byte {
	p := []byte(migJournalMagic)
	p = binio.PutUvarint(p, uint64(len(recs)))
	for _, r := range recs {
		p = binio.PutVarint(p, r.Seq)
		p = binio.PutVarint(p, int64(r.Stage))
		p = binio.PutVarint(p, int64(r.Bucket))
		p = binio.PutVarint(p, int64(r.From))
		p = binio.PutVarint(p, int64(r.To))
		p = binio.PutVarint(p, r.BaseGen)
		p = binio.PutString(p, r.State)
		p = binio.PutString(p, r.Detail)
	}
	return binio.AppendRecord(nil, p)
}

func decodeMigrationJournal(b []byte) ([]MigrationRecord, error) {
	payload, _, err := binio.ReadRecord(b)
	if err != nil {
		return nil, fmt.Errorf("spe: corrupt migration journal: %w", err)
	}
	d := snapDecoder{b: payload}
	if err := d.magic(migJournalMagic); err != nil {
		return nil, fmt.Errorf("spe: not a migration journal (bad magic)")
	}
	n := d.uvarint()
	if n > maxShardSnaps {
		return nil, fmt.Errorf("spe: corrupt migration journal: %d records", n)
	}
	recs := make([]MigrationRecord, 0, n)
	for i := uint64(0); i < n; i++ {
		var r MigrationRecord
		r.Seq = d.varint()
		r.Stage = int(d.varint())
		r.Bucket = int(d.varint())
		r.From = int(d.varint())
		r.To = int(d.varint())
		r.BaseGen = d.varint()
		r.State = d.str()
		r.Detail = d.str()
		if d.err != nil {
			break
		}
		if r.Stage < 0 || r.Bucket < 0 || r.From < 0 || r.To < 0 || r.Seq < 0 {
			return nil, fmt.Errorf("spe: corrupt migration journal: negative field in record %d", i)
		}
		switch r.State {
		case MigStatePreparing, MigStatePrepared, MigStateCommitted, MigStateAborted:
		default:
			return nil, fmt.Errorf("spe: corrupt migration journal: unknown state %q", r.State)
		}
		recs = append(recs, r)
	}
	if d.err != nil {
		return nil, fmt.Errorf("spe: corrupt migration journal: %w", d.err)
	}
	return recs, nil
}

// ReadMigrationJournal reads a job directory's migration journal. A
// missing journal reads as empty; a nil fsys uses the real filesystem.
func ReadMigrationJournal(fsys faultfs.FS, dir string) ([]MigrationRecord, error) {
	if fsys == nil {
		fsys = faultfs.OS
	}
	b, err := fsys.ReadFile(filepath.Join(dir, MigJournalName))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("spe: read migration journal: %w", err)
	}
	return decodeMigrationJournal(b)
}

// writeMigJournal durably replaces the journal: write + fsync a
// temporary, atomic rename, fsync the directory — the same discipline
// as the JOB file, so a crash leaves either the old journal or the new.
func (jr *jobRun) writeMigJournal() error {
	path := filepath.Join(jr.j.Dir, MigJournalName)
	tmp := path + ".tmp"
	f, err := jr.fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("spe: migration journal: %w", err)
	}
	if _, err := f.Write(encodeMigrationJournal(jr.migs)); err != nil {
		f.Close()
		return fmt.Errorf("spe: migration journal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("spe: migration journal: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("spe: migration journal: %w", err)
	}
	if err := jr.fsys.Rename(tmp, path); err != nil {
		return fmt.Errorf("spe: migration journal: %w", err)
	}
	if err := jr.fsys.SyncDir(jr.j.Dir); err != nil {
		return fmt.Errorf("spe: migration journal: %w", err)
	}
	return nil
}

// migRun is one in-flight migration attempt.
type migRun struct {
	idx     int // index into Job.Migrations
	rec     MigrationRecord
	js      *jobStage
	dir     string // staging directory (mig-<Seq>)
	done    chan struct{}
	prepErr error
	clone   core.CloneResult
	flipped bool
}

func (jr *jobRun) stageBySI(si int) *jobStage {
	for _, js := range jr.stages {
		if js.si == si {
			return js
		}
	}
	return nil
}

// bucketOwner resolves a bucket's current owner through the stage's
// live routing table.
func (jr *jobRun) bucketOwner(si, bucket int) int {
	rt := jr.r.rts[si]
	if rt.route != nil {
		return rt.route[bucket]
	}
	return bucket
}

// validateMigrations rejects plans that name a stage or worker the
// pipeline does not have. Shared-backend stages are refused: their
// store is one merged cut, not per-worker files, and the worker views'
// key-range predicates assume identity routing.
func (jr *jobRun) validateMigrations() error {
	for i, mg := range jr.j.Migrations {
		js := jr.stageBySI(mg.Stage)
		if js == nil {
			return fmt.Errorf("spe: migration %d: stage %d is not a stateful stage", i, mg.Stage)
		}
		if js.shared != nil {
			return fmt.Errorf("spe: migration %d: stage %s shares one backend; there is no per-worker range to move", i, js.name)
		}
		if mg.Bucket < 0 || mg.Bucket >= js.par {
			return fmt.Errorf("spe: migration %d: bucket %d out of range (parallelism %d)", i, mg.Bucket, js.par)
		}
		if mg.To < 0 || mg.To >= js.par {
			return fmt.Errorf("spe: migration %d: destination worker %d out of range (parallelism %d)", i, mg.To, js.par)
		}
	}
	return nil
}

// maybeStartPrepare starts the next eligible migration's PREPARE phase.
// Called after each committed checkpoint: the clone needs a committed
// generation to stage from, and runs concurrently with the next batch's
// ingestion — untouched ranges keep flowing while segments link over.
func (jr *jobRun) maybeStartPrepare() error {
	if jr.inflight != nil || jr.gen < 1 || len(jr.j.Migrations) == 0 {
		return nil
	}
	off := jr.j.Source.Offset()
	for i, mg := range jr.j.Migrations {
		if jr.migTried[i] {
			continue
		}
		js := jr.stageBySI(mg.Stage)
		from := jr.bucketOwner(js.si, mg.Bucket)
		if from == mg.To {
			if jr.migTried == nil {
				jr.migTried = make(map[int]bool)
			}
			jr.migTried[i] = true // already owned: nothing to do
			continue
		}
		if off < mg.AfterOffset {
			continue
		}
		return jr.startPrepare(i, mg, js, from)
	}
	return nil
}

func (jr *jobRun) startPrepare(idx int, mg Migration, js *jobStage, from int) error {
	seq := int64(1)
	for _, r := range jr.migs {
		if r.Seq >= seq {
			seq = r.Seq + 1
		}
	}
	m := &migRun{
		idx: idx,
		js:  js,
		rec: MigrationRecord{
			Seq: seq, Stage: js.si, Bucket: mg.Bucket, From: from, To: mg.To,
			BaseGen: jr.gen, State: MigStatePreparing,
		},
		dir:  migDir(jr.j.Dir, seq),
		done: make(chan struct{}),
	}
	if jr.migTried == nil {
		jr.migTried = make(map[int]bool)
	}
	jr.migTried[idx] = true
	jr.migs = append(jr.migs, m.rec)
	if err := jr.writeMigJournal(); err != nil {
		return err
	}
	jr.inflight = m
	go func() {
		defer close(m.done)
		m.prepErr = jr.prepareClone(m)
	}()
	return nil
}

// prepareClone is the PREPARE phase body, run off the coordinator
// goroutine: stage the source worker's committed checkpoint and verify
// it. It only reads the (immutable) committed generation and writes the
// private staging directory, so it is safe alongside live ingestion;
// the coordinator joins it at the next barrier, before the commit that
// would garbage-collect the base generation.
func (jr *jobRun) prepareClone(m *migRun) error {
	src := filepath.Join(jr.j.Dir, genDirName(m.rec.BaseGen), workerDirName(m.rec.Stage, m.rec.From))
	base := filepath.Join(m.dir, "base")
	res, err := core.CloneCheckpointDir(jr.fsys, src, base)
	if err != nil {
		return err
	}
	m.clone = res
	if _, _, err := core.VerifyCheckpointDir(jr.fsys, base); err != nil {
		return fmt.Errorf("staged clone failed verification: %w", err)
	}
	return nil
}

// migrateBarrier drives the in-flight migration at an aligned barrier:
// join the PREPARE phase, then either abort (journaled, staging
// removed, job unaffected) or run the COMMIT phase while every worker
// is parked. A nil return with jr.inflight still set means the handoff
// is done in memory and the caller's next commit persists it.
func (jr *jobRun) migrateBarrier() error {
	m := jr.inflight
	if m == nil {
		return nil
	}
	<-m.done
	if m.prepErr != nil {
		// A destination fault during transfer degrades to abort: the
		// source keeps serving the range and the run continues.
		return jr.abortMigration(m, fmt.Errorf("prepare: %w", m.prepErr))
	}
	if err := jr.setMigState(m, MigStatePrepared, ""); err != nil {
		return jr.abortMigration(m, fmt.Errorf("journal prepared: %w", err))
	}
	return jr.migrateCommit(m)
}

// migrateCommit is the COMMIT phase, under the barrier. Failures before
// any live state mutates abort cleanly; failures after roll both
// workers back from their cuts; a rollback failure is fatal to the run
// (which stays resumable from the committed generation — resuming IS
// the rollback).
func (jr *jobRun) migrateCommit(m *migRun) error {
	js := m.js
	rt := jr.r.rts[js.si]
	s, d, bucket := m.rec.From, m.rec.To, m.rec.Bucket

	movedUser := func(k []byte) bool { return routeKey(k, js.par) == bucket }
	storeMoved := movedUser
	if js.join {
		// Join store keys are side-tagged; ownership follows the user key.
		storeMoved = func(k []byte) bool { return movedUser(sideKeyUser(k)) }
	}

	// Seal the source: one delta cut of the live store priced against
	// the staged base (same files, so unchanged segments arrive as
	// links), carrying the operator snapshot taken at this barrier.
	snapS := js.ops[s].snapshotState()
	cutDir := filepath.Join(m.dir, "cut")
	if err := jr.migCut(js.cps[s], cutDir, filepath.Join(m.dir, "base"), snapS); err != nil {
		return jr.abortMigration(m, fmt.Errorf("seal source: %w", err))
	}
	// Rollback cut of the destination, priced against its committed
	// generation — ABORT rebuilds the destination from it if the import
	// dies halfway.
	snapD := js.ops[d].snapshotState()
	dcutDir := filepath.Join(m.dir, "dcut")
	dParent := filepath.Join(jr.j.Dir, genDirName(jr.gen), workerDirName(js.si, d))
	if err := jr.migCut(js.cps[d], dcutDir, dParent, snapD); err != nil {
		return jr.abortMigration(m, fmt.Errorf("destination rollback cut: %w", err))
	}

	// Live state mutates from here on.
	jr.stopHeal(js, s)
	newS, err := jr.reopenWorker(js, s)
	if err != nil {
		return jr.rollbackMigration(m, nil, snapS, snapD, err)
	}
	split := func(key []byte) int {
		if storeMoved(key) {
			return 1
		}
		return 0
	}
	if _, err := rerouteCheckpointState(jr.fsys, cutDir,
		filepath.Join(jr.j.Dir, migScratchName),
		[]statebackend.Backend{newS, js.backends[d]}, split); err != nil {
		return jr.rollbackMigration(m, newS, snapS, snapD, fmt.Errorf("import moved range: %w", err))
	}
	staySnap, moveSnap, err := splitOpSnap(snapS, movedUser, js.join)
	if err != nil {
		return jr.rollbackMigration(m, newS, snapS, snapD, err)
	}
	mergedD, err := mergeOpSnaps(snapD, moveSnap, js.join)
	if err != nil {
		return jr.rollbackMigration(m, newS, snapS, snapD, err)
	}
	if err := js.ops[s].restoreState(staySnap); err != nil {
		return jr.rollbackMigration(m, newS, snapS, snapD, err)
	}
	if err := js.ops[d].restoreState(mergedD); err != nil {
		return jr.rollbackMigration(m, newS, snapS, snapD, err)
	}
	if err := jr.swapWorkerBackend(js, s, newS); err != nil {
		return jr.rollbackMigration(m, newS, snapS, snapD, err)
	}
	jr.startHeal(js, s)
	// Flip routing in memory. The JOB rename of the commit that follows
	// this barrier persists the flipped table — the single commit point.
	if rt.route == nil {
		rt.route = make([]int, rt.par)
		for b := range rt.route {
			rt.route[b] = b
		}
	}
	rt.route[bucket] = d
	m.flipped = true
	return nil
}

// migCut takes one checkpoint for the migration protocol, delta-priced
// when the backend supports it.
func (jr *jobRun) migCut(cp statebackend.Checkpointer, dir, parent string, meta []byte) error {
	if dc, ok := cp.(statebackend.DeltaCheckpointer); ok {
		return dc.CheckpointDeltaMeta(dir, parent, meta)
	}
	return cp.CheckpointMeta(dir, meta)
}

// reopenWorker destroys one worker's live store and reopens it empty
// (the job's NewBackend wrapper already clears stale state on open).
func (jr *jobRun) reopenWorker(js *jobStage, w int) (statebackend.Backend, error) {
	if err := js.backends[w].Destroy(); err != nil {
		return nil, fmt.Errorf("spe: migration: clear worker %d store: %w", w, err)
	}
	b, err := jr.r.rts[js.si].stage.NewBackend(w)
	if err != nil {
		return nil, fmt.Errorf("spe: migration: reopen worker %d store: %w", w, err)
	}
	return b, nil
}

// swapWorkerBackend installs a replacement backend for one parked
// worker: stage bookkeeping, checkpointer, and the operator itself.
func (jr *jobRun) swapWorkerBackend(js *jobStage, w int, b statebackend.Backend) error {
	cp, ok := statebackend.AsCheckpointer(b)
	if !ok {
		return fmt.Errorf("spe: migration: backend %s lost checkpoint support", b.Name())
	}
	js.backends[w] = b
	js.cps[w] = cp
	js.ops[w].setBackend(b)
	return nil
}

// rollbackMigration is ABORT after live state began mutating: both
// workers are rebuilt from the cuts taken at this same barrier, so the
// job continues exactly as if the handoff was never attempted. If the
// rollback itself fails the run ends with an error — the committed
// generation is untouched, so Resume recovers (and reconciles the
// journal to aborted).
func (jr *jobRun) rollbackMigration(m *migRun, newS statebackend.Backend, snapS, snapD []byte, cause error) error {
	js := m.js
	s, d := m.rec.From, m.rec.To
	fatal := func(step string, err error) error {
		return fmt.Errorf("spe: migration %d: %v; rollback failed at %s: %w", m.rec.Seq, cause, step, err)
	}
	// Source: fresh store restored from the sealed cut, operator state
	// from the barrier snapshot.
	if newS != nil {
		if err := newS.Destroy(); err != nil {
			return fatal("clear partial source rebuild", err)
		}
	}
	b, err := jr.r.rts[js.si].stage.NewBackend(s)
	if err != nil {
		return fatal("reopen source store", err)
	}
	cp, ok := statebackend.AsCheckpointer(b)
	if !ok {
		return fatal("reopen source store", fmt.Errorf("backend %s lost checkpoint support", b.Name()))
	}
	if _, err := cp.RestoreMeta(filepath.Join(m.dir, "cut")); err != nil {
		return fatal("restore source from cut", err)
	}
	js.backends[s], js.cps[s] = b, cp
	js.ops[s].setBackend(b)
	if err := js.ops[s].restoreState(snapS); err != nil {
		return fatal("restore source operator", err)
	}
	// Destination: the import may have landed a partial range; rebuild
	// from the rollback cut.
	jr.stopHeal(js, d)
	bd, err := jr.reopenWorker(js, d)
	if err != nil {
		return fatal("reopen destination store", err)
	}
	cpd, ok := statebackend.AsCheckpointer(bd)
	if !ok {
		return fatal("reopen destination store", fmt.Errorf("backend %s lost checkpoint support", bd.Name()))
	}
	if _, err := cpd.RestoreMeta(filepath.Join(m.dir, "dcut")); err != nil {
		return fatal("restore destination from cut", err)
	}
	js.backends[d], js.cps[d] = bd, cpd
	js.ops[d].setBackend(bd)
	if err := js.ops[d].restoreState(snapD); err != nil {
		return fatal("restore destination operator", err)
	}
	jr.startHeal(js, s)
	jr.startHeal(js, d)
	jr.fsys.RemoveAll(filepath.Join(jr.j.Dir, migScratchName))
	return jr.abortMigration(m, cause)
}

// abortMigration finalizes a failed attempt: journal the abort, remove
// the staging area. An error here ends the run (the journal or job dir
// is unwritable — the same media the next commit needs anyway).
func (jr *jobRun) abortMigration(m *migRun, cause error) error {
	jr.inflight = nil
	if err := jr.setMigState(m, MigStateAborted, cause.Error()); err != nil {
		return fmt.Errorf("spe: migration %d abort: %w", m.rec.Seq, err)
	}
	if err := jr.fsys.RemoveAll(m.dir); err != nil {
		return fmt.Errorf("spe: migration %d abort: clear staging: %w", m.rec.Seq, err)
	}
	return nil
}

// finishMigration runs after the commit that carried a flipped routing
// table landed: the handoff is durable, so journal it and drop the
// staging area (the source range's files are gone with the old store —
// the "source range GC" half of COMMIT happened when the commit wrote
// the rebuilt source checkpoint and clearGens dropped the old
// generation).
func (jr *jobRun) finishMigration() error {
	m := jr.inflight
	if m == nil || !m.flipped {
		return nil
	}
	jr.inflight = nil
	if err := jr.setMigState(m, MigStateCommitted, ""); err != nil {
		return fmt.Errorf("spe: migration %d: journal committed: %w", m.rec.Seq, err)
	}
	if err := jr.fsys.RemoveAll(m.dir); err != nil {
		return fmt.Errorf("spe: migration %d: clear staging: %w", m.rec.Seq, err)
	}
	if err := jr.fsys.RemoveAll(filepath.Join(jr.j.Dir, migScratchName)); err != nil {
		return fmt.Errorf("spe: migration %d: clear scratch: %w", m.rec.Seq, err)
	}
	return nil
}

// abandonInflight aborts an attempt the run is ending before it could
// commit (graceful end of stream between PREPARE and the next barrier).
func (jr *jobRun) abandonInflight() error {
	m := jr.inflight
	if m == nil || m.flipped {
		return nil
	}
	<-m.done
	return jr.abortMigration(m, errors.New("job ended before handoff"))
}

// setMigState updates one journal record and durably rewrites the
// journal.
func (jr *jobRun) setMigState(m *migRun, state, detail string) error {
	for i := range jr.migs {
		if jr.migs[i].Seq == m.rec.Seq {
			jr.migs[i].State = state
			jr.migs[i].Detail = detail
		}
	}
	m.rec.State = state
	return jr.writeMigJournal()
}

// reconcileMigrations resolves in-flight journal records on resume
// against the committed routing table: a record whose bucket the table
// routes to its destination committed (the JOB rename landed); anything
// else aborted — the state the job resumes from predates the handoff,
// so resuming is the rollback. Staging debris is cleared either way.
func (jr *jobRun) reconcileMigrations(meta JobMeta) error {
	recs, err := ReadMigrationJournal(jr.fsys, jr.j.Dir)
	if err != nil {
		return err
	}
	jr.migs = recs
	changed := false
	for i := range jr.migs {
		rec := &jr.migs[i]
		if rec.State == MigStatePreparing || rec.State == MigStatePrepared {
			if migrationCommittedIn(meta, *rec) {
				rec.State = MigStateCommitted
				rec.Detail = "resolved committed on resume"
			} else {
				rec.State = MigStateAborted
				rec.Detail = "rolled back on resume"
			}
			changed = true
		}
		if err := jr.fsys.RemoveAll(migDir(jr.j.Dir, rec.Seq)); err != nil {
			return fmt.Errorf("spe: migration %d: clear staging: %w", rec.Seq, err)
		}
	}
	if err := jr.fsys.RemoveAll(filepath.Join(jr.j.Dir, migScratchName)); err != nil {
		return fmt.Errorf("spe: migration: clear scratch: %w", err)
	}
	if changed {
		return jr.writeMigJournal()
	}
	return nil
}

// migrationCommittedIn reports whether a record's routing flip is
// present in a committed JobMeta. The pre-flip owner is never To (a
// migration only starts when they differ), so table[bucket] == To is
// exactly "the flip committed".
func migrationCommittedIn(meta JobMeta, rec MigrationRecord) bool {
	if rec.Stage >= len(meta.StagePars) || int64(rec.Bucket) >= meta.StagePars[rec.Stage] {
		return false
	}
	owner := rec.Bucket
	if rec.Stage < len(meta.Routing) && rec.Bucket < len(meta.Routing[rec.Stage]) {
		owner = int(meta.Routing[rec.Stage][rec.Bucket])
	}
	return owner == rec.To
}

// clearMigrationDebris removes journal, staging and scratch leftovers
// from a job directory (fresh Run over a dir a crashed attempt used).
func (jr *jobRun) clearMigrationDebris() error {
	ents, err := jr.fsys.ReadDir(jr.j.Dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("spe: migration: scan job dir: %w", err)
	}
	for _, e := range ents {
		name := e.Name()
		if name == MigJournalName || name == MigJournalName+".tmp" ||
			name == migScratchName || strings.HasPrefix(name, migDirPrefix) {
			if err := jr.fsys.RemoveAll(filepath.Join(jr.j.Dir, name)); err != nil {
				return fmt.Errorf("spe: migration: clear debris: %w", err)
			}
		}
	}
	return nil
}

// splitOpSnap splits one operator snapshot into the registries that
// stay on the source worker and the ones that move with the bucket.
// Lifetime counters (results, late drops, triggers) are the worker's
// history, not keyed state: they stay put, so job-level sums are
// unchanged by a migration.
func splitOpSnap(snap []byte, moved func([]byte) bool, join bool) (stay, move []byte, err error) {
	mk := func(k string) bool { return moved([]byte(k)) }
	if join {
		return splitJoinSnap(snap, mk)
	}
	return splitWindowSnap(snap, mk)
}

// mergeOpSnaps merges a moved bucket's registries into the destination
// worker's snapshot. The two sides' key sets are disjoint (the
// destination never owned the moved bucket), the watermark is the max
// (equal at a barrier in practice), and counters add.
func mergeOpSnaps(dst, add []byte, join bool) ([]byte, error) {
	if join {
		return mergeJoinSnaps(dst, add)
	}
	return mergeWindowSnaps(dst, add)
}

func splitWindowSnap(snap []byte, moved func(string) bool) (stay, move []byte, err error) {
	src := &WindowOperator{}
	if err := src.restoreState(snap); err != nil {
		return nil, nil, err
	}
	mk := func() *WindowOperator {
		return &WindowOperator{
			wm:       src.wm,
			aligned:  make(map[window.Window]map[string]struct{}),
			sessions: make(map[string][]*session),
			armedAt:  make(map[string]int64),
			custom:   make(map[string]map[window.Window]int64),
			counts:   make(map[string]int64),
		}
	}
	st, mv := mk(), mk()
	st.resultsEmitted, st.lateDropped, st.triggersFired = src.resultsEmitted, src.lateDropped, src.triggersFired
	pick := func(k string) *WindowOperator {
		if moved(k) {
			return mv
		}
		return st
	}
	for w, keys := range src.aligned {
		for k := range keys {
			o := pick(k)
			set := o.aligned[w]
			if set == nil {
				set = make(map[string]struct{})
				o.aligned[w] = set
			}
			set[k] = struct{}{}
		}
	}
	for k, list := range src.sessions {
		pick(k).sessions[k] = list
	}
	for k, set := range src.custom {
		pick(k).custom[k] = set
	}
	for k, n := range src.counts {
		pick(k).counts[k] = n
	}
	return st.snapshotState(), mv.snapshotState(), nil
}

func mergeWindowSnaps(dstSnap, addSnap []byte) ([]byte, error) {
	a := &WindowOperator{}
	if err := a.restoreState(dstSnap); err != nil {
		return nil, err
	}
	b := &WindowOperator{}
	if err := b.restoreState(addSnap); err != nil {
		return nil, err
	}
	if b.wm > a.wm {
		a.wm = b.wm
	}
	a.resultsEmitted += b.resultsEmitted
	a.lateDropped += b.lateDropped
	a.triggersFired += b.triggersFired
	for w, keys := range b.aligned {
		set := a.aligned[w]
		if set == nil {
			set = make(map[string]struct{})
			a.aligned[w] = set
		}
		for k := range keys {
			set[k] = struct{}{}
		}
	}
	for k, list := range b.sessions {
		a.sessions[k] = list
	}
	for k, set := range b.custom {
		a.custom[k] = set
	}
	for k, n := range b.counts {
		a.counts[k] = n
	}
	return a.snapshotState(), nil
}

func splitJoinSnap(snap []byte, moved func(string) bool) (stay, move []byte, err error) {
	src := &IntervalJoinOperator{}
	if err := src.restoreState(snap); err != nil {
		return nil, nil, err
	}
	mk := func() *IntervalJoinOperator {
		return &IntervalJoinOperator{
			wm: src.wm,
			buckets: map[Side]map[window.Window]map[string]struct{}{
				Left:  make(map[window.Window]map[string]struct{}),
				Right: make(map[window.Window]map[string]struct{}),
			},
			expiry: map[Side]*windowHeap{Left: {}, Right: {}},
		}
	}
	st, mv := mk(), mk()
	st.results, st.late = src.results, src.late
	pick := func(k string) *IntervalJoinOperator {
		if moved(k) {
			return mv
		}
		return st
	}
	for _, side := range []Side{Left, Right} {
		for w, keys := range src.buckets[side] {
			for k := range keys {
				o := pick(k)
				set := o.buckets[side][w]
				if set == nil {
					set = make(map[string]struct{})
					o.buckets[side][w] = set
				}
				set[k] = struct{}{}
			}
		}
	}
	return st.snapshotState(), mv.snapshotState(), nil
}

func mergeJoinSnaps(dstSnap, addSnap []byte) ([]byte, error) {
	a := &IntervalJoinOperator{}
	if err := a.restoreState(dstSnap); err != nil {
		return nil, err
	}
	b := &IntervalJoinOperator{}
	if err := b.restoreState(addSnap); err != nil {
		return nil, err
	}
	if b.wm > a.wm {
		a.wm = b.wm
	}
	a.results += b.results
	a.late += b.late
	for _, side := range []Side{Left, Right} {
		for w, keys := range b.buckets[side] {
			set := a.buckets[side][w]
			if set == nil {
				set = make(map[string]struct{})
				a.buckets[side][w] = set
			}
			for k := range keys {
				set[k] = struct{}{}
			}
		}
	}
	return a.snapshotState(), nil
}
