package spe

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"flowkv/internal/faultfs"
)

// migIters returns the iteration count for the randomized migration
// battery. FLOWKV_MIGRATE_ITERS overrides; -short keeps it small.
func migIters(t *testing.T) int {
	if s := os.Getenv("FLOWKV_MIGRATE_ITERS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad FLOWKV_MIGRATE_ITERS=%q", s)
		}
		return n
	}
	if testing.Short() {
		return 4
	}
	return 24
}

// routedOwner resolves a bucket's owner through a committed meta's
// routing table (identity when absent).
func routedOwner(meta JobMeta, stage, bucket int) int {
	if stage < len(meta.Routing) && bucket < len(meta.Routing[stage]) {
		return int(meta.Routing[stage][bucket])
	}
	return bucket
}

// requireNoMigDebris asserts a finished job directory holds no staging
// directories, scratch area, or half-written journal.
func requireNoMigDebris(t *testing.T, jobDir string) {
	t.Helper()
	ents, err := os.ReadDir(jobDir)
	if err != nil {
		t.Fatalf("scan job dir: %v", err)
	}
	for _, e := range ents {
		name := e.Name()
		if strings.HasPrefix(name, migDirPrefix) || name == migScratchName || name == MigJournalName+".tmp" {
			t.Fatalf("migration debris left behind: %s", name)
		}
	}
}

// requireTerminalJournal reads the journal and asserts every record
// reached a terminal state (committed or aborted).
func requireTerminalJournal(t *testing.T, jobDir string) []MigrationRecord {
	t.Helper()
	recs, err := ReadMigrationJournal(nil, jobDir)
	if err != nil {
		t.Fatalf("read migration journal: %v", err)
	}
	for _, r := range recs {
		if r.State != MigStateCommitted && r.State != MigStateAborted {
			t.Fatalf("journal record %d left non-terminal: %s", r.Seq, r.State)
		}
	}
	return recs
}

// migSwap is the battery's standing plan: bucket 0 moves to worker 1
// immediately, then bucket 1 moves to worker 0 once the source passes
// offset 300 — the second handoff starts from a non-identity table
// (worker 1 owns both buckets in between) and the final table is a full
// swap, so nothing about identity routing can mask a bug.
func migSwap() []Migration {
	return []Migration{
		{Stage: 1, Bucket: 0, To: 1},
		{Stage: 1, Bucket: 1, To: 0, AfterOffset: 300},
	}
}

// TestJobMigrationGoldenLedger runs both handoffs of the swap plan live
// and requires the committed ledger to be byte-identical to the
// unmigrated golden run — the moved range loses nothing, the untouched
// range notices nothing — and the commit artifacts (JOB v3 routing
// table, journal states, staging cleanup) to be exactly right.
func TestJobMigrationGoldenLedger(t *testing.T) {
	tuples := crashTuples(600)
	const every = 97
	for _, pat := range crashPatterns() {
		pat := pat
		t.Run(pat.name, func(t *testing.T) {
			t.Parallel()
			golden := goldenLedger(t, pat, tuples, every, 1<<10)
			base := t.TempDir()
			job := &Job{
				Pipeline:        crashPipeline(pat, filepath.Join(base, "state"), nil, 1<<10),
				Source:          NewSliceSource(tuples),
				Dir:             filepath.Join(base, "job"),
				CheckpointEvery: every,
				Migrations:      migSwap(),
			}
			res, err := job.Run()
			if err != nil {
				t.Fatalf("migrated run: %v", err)
			}
			if !res.Final {
				t.Fatal("migrated run did not finish")
			}
			checkLedger(t, job.Dir, golden)

			meta, err := ReadJobMeta(nil, job.Dir)
			if err != nil {
				t.Fatalf("read meta: %v", err)
			}
			if want := []int64{1, 0}; len(meta.Routing) != 2 || !reflect.DeepEqual(meta.Routing[1], want) {
				t.Fatalf("committed routing = %v, want stage-1 table %v", meta.Routing, want)
			}
			recs := requireTerminalJournal(t, job.Dir)
			if len(recs) != 2 {
				t.Fatalf("journal has %d records, want 2: %+v", len(recs), recs)
			}
			wantRecs := []struct{ bucket, from, to int }{{0, 0, 1}, {1, 1, 0}}
			for i, w := range wantRecs {
				r := recs[i]
				if r.State != MigStateCommitted {
					t.Fatalf("record %d state %s, want committed (%q)", r.Seq, r.State, r.Detail)
				}
				if r.Stage != 1 || r.Bucket != w.bucket || r.From != w.from || r.To != w.to {
					t.Fatalf("record %d = %+v, want stage 1 bucket %d %d->%d", r.Seq, r, w.bucket, w.from, w.to)
				}
			}
			requireNoMigDebris(t, job.Dir)
		})
	}
}

// TestJobMigrationIntervalJoin runs the swap plan over an interval-join
// stage: join store keys are side-tagged, so the split must route by the
// user key under the tag or half of each key's state stays behind.
func TestJobMigrationIntervalJoin(t *testing.T) {
	tuples := joinCrashTuples(600)
	const every = 97
	goldenBase := t.TempDir()
	gjob := &Job{
		Pipeline:        joinJobPipeline(filepath.Join(goldenBase, "state"), nil, 1<<10, 2),
		Source:          NewSliceSource(tuples),
		Dir:             filepath.Join(goldenBase, "job"),
		CheckpointEvery: every,
	}
	gres, err := gjob.Run()
	if err != nil || !gres.Final {
		t.Fatalf("golden join run: final=%v err=%v", gres != nil && gres.Final, err)
	}
	golden, err := os.ReadFile(filepath.Join(gjob.Dir, ledgerName))
	if err != nil || len(golden) == 0 {
		t.Fatalf("golden join ledger: %d bytes, err=%v", len(golden), err)
	}

	base := t.TempDir()
	job := &Job{
		Pipeline:        joinJobPipeline(filepath.Join(base, "state"), nil, 1<<10, 2),
		Source:          NewSliceSource(tuples),
		Dir:             filepath.Join(base, "job"),
		CheckpointEvery: every,
		Migrations:      migSwap(),
	}
	res, err := job.Run()
	if err != nil {
		t.Fatalf("migrated join run: %v", err)
	}
	if !res.Final {
		t.Fatal("migrated join run did not finish")
	}
	checkLedger(t, job.Dir, golden)
	meta, err := ReadJobMeta(nil, job.Dir)
	if err != nil {
		t.Fatalf("read meta: %v", err)
	}
	if want := []int64{1, 0}; len(meta.Routing) != 2 || !reflect.DeepEqual(meta.Routing[1], want) {
		t.Fatalf("committed routing = %v, want stage-1 table %v", meta.Routing, want)
	}
	for _, r := range requireTerminalJournal(t, job.Dir) {
		if r.State != MigStateCommitted {
			t.Fatalf("join migration %d ended %s (%q)", r.Seq, r.State, r.Detail)
		}
	}
	requireNoMigDebris(t, job.Dir)
}

// TestJobMigrationCrashPins crashes the filesystem at every protocol
// step — sealing the source cut, hard-linking the staged transfer,
// renaming the flip-carrying JOB file, and both halves of an abort (the
// journal write and the staging GC) — and requires resume to reconcile
// the journal, converge to the golden ledger, and leave the bucket on
// the correct side of the crash.
func TestJobMigrationCrashPins(t *testing.T) {
	tuples := crashTuples(600)
	const every = 97
	legs := []struct {
		name string
		// after delays the handoff; 500 parks it between PREPARE and the
		// barrier that would commit it, so the graceful end of stream
		// aborts it — the only way to pin the abort path deterministically.
		after int64
		rule  faultfs.Rule
		// commits reports whether the resumed job still completes the
		// handoff (an aborted-by-schedule migration never retries: the
		// resume sees no in-loop checkpoint after offset 582).
		commits bool
	}{
		// First rename under the staging dir: the source cut's commit.
		{"mid-seal", 0,
			faultfs.Rule{Op: faultfs.OpRename, PathContains: migDirPrefix, Crash: true}, true},
		// First hard link under the staging dir: the segment transfer.
		{"mid-transfer", 0,
			faultfs.Rule{Op: faultfs.OpLink, PathContains: migDirPrefix, Crash: true}, true},
		// Second JOB rename: the commit whose routing table carries the
		// flip. The crash fires before the rename lands, so the flip must
		// not be durable and resume must roll the handoff back.
		{"mid-flip", 0,
			faultfs.Rule{Op: faultfs.OpRename, PathContains: "JOB", Nth: 2, Crash: true}, true},
		// Second journal rename: the "aborted" record of the end-of-stream
		// abort (the first was "preparing").
		{"mid-abort-journal", 500,
			faultfs.Rule{Op: faultfs.OpRename, PathContains: MigJournalName, Nth: 2, Crash: true}, false},
		// Second staging removal: the abort's staging GC (the first was
		// the clone clearing its target).
		{"mid-abort-gc", 500,
			faultfs.Rule{Op: faultfs.OpRemove, PathContains: migDirPrefix, Nth: 2, Crash: true}, false},
	}
	for _, pat := range crashPatterns() {
		pat := pat
		t.Run(pat.name, func(t *testing.T) {
			t.Parallel()
			golden := goldenLedger(t, pat, tuples, every, 1<<10)
			for _, leg := range legs {
				leg := leg
				t.Run(leg.name, func(t *testing.T) {
					t.Parallel()
					base := t.TempDir()
					inj := faultfs.NewInjector(faultfs.OS)
					src := NewSliceSource(tuples)
					mk := func(kill int64) *Job {
						return &Job{
							Pipeline:        crashPipeline(pat, filepath.Join(base, "state"), inj, 1<<10),
							Source:          src,
							Dir:             filepath.Join(base, "job"),
							FS:              inj,
							CheckpointEvery: every,
							Migrations:      []Migration{{Stage: 1, Bucket: 0, To: 1, AfterOffset: leg.after}},
							KillAfterTuples: kill,
						}
					}
					inj.SetRule(leg.rule)
					if _, err := mk(0).Run(); err == nil {
						t.Fatal("run survived a crashed filesystem")
					}
					if !inj.Fired() {
						t.Fatal("crash pin did not fire")
					}
					inj.Reset()
					resumeToFinal(t, mk, golden)

					jobDir := filepath.Join(base, "job")
					recs := requireTerminalJournal(t, jobDir)
					if len(recs) == 0 {
						t.Fatal("no migration was journaled")
					}
					meta, err := ReadJobMeta(inj, jobDir)
					if err != nil {
						t.Fatalf("read meta: %v", err)
					}
					owner := routedOwner(meta, 1, 0)
					if leg.commits {
						if owner != 1 {
							t.Fatalf("bucket 0 owned by %d after resume, want 1 (handoff lost)", owner)
						}
						if last := recs[len(recs)-1]; last.State != MigStateCommitted {
							t.Fatalf("last journal record %s (%q), want committed", last.State, last.Detail)
						}
					} else {
						if owner != 0 {
							t.Fatalf("bucket 0 owned by %d, want 0 (aborted handoff leaked)", owner)
						}
						for _, r := range recs {
							if r.State != MigStateAborted {
								t.Fatalf("record %d is %s, want aborted", r.Seq, r.State)
							}
						}
					}
					requireNoMigDebris(t, jobDir)
				})
			}
		})
	}
}

// TestJobMigrationDestinationFaultAborts fails every file creation under
// the staging directory with a persistent media error — the staged clone
// cannot be verified, exactly as if the destination's disk were bad —
// and requires the job to degrade to a clean abort: the run completes,
// the ledger matches golden, and the source still owns the range.
func TestJobMigrationDestinationFaultAborts(t *testing.T) {
	tuples := crashTuples(600)
	const every = 97
	pat := crashPatterns()[0]
	golden := goldenLedger(t, pat, tuples, every, 1<<10)

	base := t.TempDir()
	inj := faultfs.NewInjector(faultfs.OS)
	errMedia := errors.New("destination media error")
	inj.SetRule(faultfs.Rule{
		Op: faultfs.OpCreate, PathContains: migDirPrefix,
		Class: faultfs.ClassPersistent, Err: errMedia,
	})
	job := &Job{
		Pipeline:        crashPipeline(pat, filepath.Join(base, "state"), inj, 1<<10),
		Source:          NewSliceSource(tuples),
		Dir:             filepath.Join(base, "job"),
		FS:              inj,
		CheckpointEvery: every,
		Migrations:      []Migration{{Stage: 1, Bucket: 0, To: 1}},
	}
	res, err := job.Run()
	if err != nil {
		t.Fatalf("run did not degrade to abort: %v", err)
	}
	if !res.Final {
		t.Fatal("run did not finish")
	}
	if !inj.Fired() {
		t.Fatal("destination fault did not fire")
	}
	checkLedger(t, job.Dir, golden)
	recs := requireTerminalJournal(t, job.Dir)
	if len(recs) != 1 || recs[0].State != MigStateAborted {
		t.Fatalf("journal = %+v, want one aborted record", recs)
	}
	if !strings.Contains(recs[0].Detail, "prepare") {
		t.Fatalf("abort detail %q does not blame the prepare phase", recs[0].Detail)
	}
	meta, err := ReadJobMeta(inj, job.Dir)
	if err != nil {
		t.Fatalf("read meta: %v", err)
	}
	if owner := routedOwner(meta, 1, 0); owner != 0 {
		t.Fatalf("bucket 0 owned by %d after aborted handoff, want 0", owner)
	}
	requireNoMigDebris(t, job.Dir)
}

// migBatteryCase is one pipeline shape for the randomized battery.
type migBatteryCase struct {
	name   string
	tuples []Tuple
	pipe   func(base string, fsys faultfs.FS) *Pipeline
}

func migBatteryCases() []migBatteryCase {
	pat := crashPatterns()[0]
	return []migBatteryCase{
		{"AAR", crashTuples(600), func(base string, fsys faultfs.FS) *Pipeline {
			return crashPipeline(pat, filepath.Join(base, "state"), fsys, 1<<10)
		}},
		{"interval-join", joinCrashTuples(600), func(base string, fsys faultfs.FS) *Pipeline {
			return joinJobPipeline(filepath.Join(base, "state"), fsys, 1<<10, 2)
		}},
	}
}

// TestJobMigrationKillResumeExactlyOnce is the randomized migration
// battery: each iteration runs the swap plan and either kills the job
// after a random tuple count or crashes the filesystem at a random
// mutating operation (measured against a full migrated run, so the
// crash point can land anywhere in the protocol), then resumes — with
// more random kills — until final. Every iteration must converge to the
// unmigrated golden ledger, leave the journal terminal and the routing
// table consistent with it, and at least one iteration must complete a
// handoff despite the faults.
func TestJobMigrationKillResumeExactlyOnce(t *testing.T) {
	iters := migIters(t)
	const every = 97
	for _, c := range migBatteryCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			goldenBase := t.TempDir()
			gjob := &Job{
				Pipeline:        c.pipe(goldenBase, nil),
				Source:          NewSliceSource(c.tuples),
				Dir:             filepath.Join(goldenBase, "job"),
				CheckpointEvery: every,
			}
			if res, err := gjob.Run(); err != nil || !res.Final {
				t.Fatalf("golden run: final=%v err=%v", res != nil && res.Final, err)
			}
			golden, err := os.ReadFile(filepath.Join(gjob.Dir, ledgerName))
			if err != nil || len(golden) == 0 {
				t.Fatalf("golden ledger: %d bytes, err=%v", len(golden), err)
			}

			// Measure how many mutating ops one full migrated run performs;
			// random crash points are drawn from that range.
			measBase := t.TempDir()
			measInj := faultfs.NewInjector(faultfs.OS)
			mjob := &Job{
				Pipeline:        c.pipe(measBase, measInj),
				Source:          NewSliceSource(c.tuples),
				Dir:             filepath.Join(measBase, "job"),
				FS:              measInj,
				CheckpointEvery: every,
				Migrations:      migSwap(),
			}
			if res, err := mjob.Run(); err != nil || !res.Final {
				t.Fatalf("measuring run: final=%v err=%v", res != nil && res.Final, err)
			}
			checkLedger(t, mjob.Dir, golden)
			opsTotal := measInj.Ops()
			if opsTotal == 0 {
				t.Fatal("measuring run performed no mutating ops")
			}

			rng := rand.New(rand.NewSource(int64(0x316 + len(c.name)*7919)))
			base := t.TempDir()
			committed := 0
			for i := 0; i < iters; i++ {
				dir := filepath.Join(base, fmt.Sprintf("i%03d", i))
				inj := faultfs.NewInjector(faultfs.OS)
				src := NewSliceSource(c.tuples)
				mk := func(kill int64) *Job {
					return &Job{
						Pipeline:        c.pipe(dir, inj),
						Source:          src,
						Dir:             filepath.Join(dir, "job"),
						FS:              inj,
						CheckpointEvery: every,
						Migrations:      migSwap(),
						KillAfterTuples: kill,
					}
				}
				var kill int64
				if rng.Intn(2) == 0 {
					inj.SetRule(faultfs.Rule{AtOp: 1 + rng.Int63n(opsTotal), Crash: true})
				} else {
					kill = 1 + rng.Int63n(int64(len(c.tuples)))
				}
				res, err := mk(kill).Run()
				for attempts := 0; err != nil; attempts++ {
					if attempts > 40 {
						t.Fatalf("iter %d: not final after %d resumes: %v", i, attempts, err)
					}
					if attempts > 0 && !errors.Is(err, ErrJobKilled) {
						// After the first resume the injector is clean; only
						// deliberate kills may fail a run.
						t.Fatalf("iter %d: unexpected error on resume: %v", i, err)
					}
					inj.Reset()
					kill = 0
					if rng.Intn(3) == 0 {
						kill = 1 + rng.Int63n(int64(len(c.tuples)))
					}
					res, err = runOrResume(mk(kill))
				}
				if !res.Final {
					t.Fatalf("iter %d: job not final", i)
				}
				jobDir := filepath.Join(dir, "job")
				checkLedger(t, jobDir, golden)
				recs := requireTerminalJournal(t, jobDir)
				requireNoMigDebris(t, jobDir)

				// The routing table must agree with the journal: the last
				// committed record per bucket owns it, identity otherwise.
				meta, err := ReadJobMeta(inj, jobDir)
				if err != nil {
					t.Fatalf("iter %d: read meta: %v", i, err)
				}
				want := map[int]int{}
				sawCommit := false
				for _, r := range recs {
					if r.State == MigStateCommitted {
						want[r.Bucket] = r.To
						sawCommit = true
					}
				}
				for b := 0; b < 2; b++ {
					w, ok := want[b]
					if !ok {
						w = b
					}
					if got := routedOwner(meta, 1, b); got != w {
						t.Fatalf("iter %d: bucket %d owned by %d, journal says %d (%+v)", i, b, got, w, recs)
					}
				}
				if sawCommit {
					committed++
				}
			}
			if committed == 0 {
				t.Fatalf("no iteration of %d completed a handoff", iters)
			}
			t.Logf("%s: %d/%d iterations committed at least one handoff", c.name, committed, iters)
		})
	}
}

// TestMigrationJournalRoundTrip covers the journal codec: round trips,
// the empty journal, a missing file, and rejection of truncation, bit
// flips, unknown states and negative fields.
func TestMigrationJournalRoundTrip(t *testing.T) {
	recs := []MigrationRecord{
		{Seq: 1, Stage: 1, Bucket: 0, From: 0, To: 1, BaseGen: 3, State: MigStateCommitted},
		{Seq: 2, Stage: 1, Bucket: 1, From: 1, To: 0, BaseGen: 5, State: MigStateAborted, Detail: "prepare: staged clone failed verification: boom"},
		{Seq: 3, Stage: 2, Bucket: 7, From: 7, To: 2, BaseGen: 9, State: MigStatePreparing},
		{Seq: 4, Stage: 2, Bucket: 3, From: 3, To: 1, BaseGen: 9, State: MigStatePrepared},
	}
	got, err := decodeMigrationJournal(encodeMigrationJournal(recs))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("round trip: got %+v want %+v", got, recs)
	}
	if got, err := decodeMigrationJournal(encodeMigrationJournal(nil)); err != nil || len(got) != 0 {
		t.Fatalf("empty journal: %v %v", got, err)
	}
	if recs, err := ReadMigrationJournal(nil, t.TempDir()); err != nil || recs != nil {
		t.Fatalf("missing journal: %v %v", recs, err)
	}

	enc := encodeMigrationJournal(recs)
	for cut := 1; cut < len(enc); cut += 7 {
		if _, err := decodeMigrationJournal(enc[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded", cut)
		}
	}
	for i := 0; i < len(enc); i += 11 {
		flipped := append([]byte(nil), enc...)
		flipped[i] ^= 0x40
		if _, err := decodeMigrationJournal(flipped); err == nil {
			t.Fatalf("bit flip at %d decoded", i)
		}
	}
	if _, err := decodeMigrationJournal(encodeMigrationJournal([]MigrationRecord{
		{Seq: 1, State: "exploded"},
	})); err == nil {
		t.Fatal("unknown state decoded")
	}
	if _, err := decodeMigrationJournal(encodeMigrationJournal([]MigrationRecord{
		{Seq: -1, State: MigStateAborted},
	})); err == nil {
		t.Fatal("negative sequence decoded")
	}
}

// TestJobMetaRoutingRoundTrip covers the JOB v3 routing extension: a
// non-identity table round trips, nil tables stay nil, and tables that
// disagree with the stage manifest are rejected at decode time.
func TestJobMetaRoutingRoundTrip(t *testing.T) {
	m := JobMeta{
		Gen: 7, Offset: 582, TuplesIn: 600, MaxTS: 12345, LedgerLen: 999,
		StagePars: []int64{2, 3},
		Routing:   [][]int64{nil, {2, 0, 1}},
	}
	got, err := decodeJobMeta(encodeJobMeta(m))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip: got %+v want %+v", got, m)
	}
	bad := []JobMeta{
		// One table for two stages.
		{StagePars: []int64{2, 3}, Routing: [][]int64{{0, 1}}},
		// Wrong bucket count for the stage's parallelism.
		{StagePars: []int64{2, 3}, Routing: [][]int64{nil, {0, 1}}},
		// Out-of-range worker.
		{StagePars: []int64{2, 3}, Routing: [][]int64{nil, {0, 1, 3}}},
	}
	for i, b := range bad {
		if _, err := decodeJobMeta(encodeJobMeta(b)); err == nil {
			t.Fatalf("bad routing %d decoded: %+v", i, b.Routing)
		}
	}
}

// TestJobMigrationValidation rejects plans naming stages or workers the
// pipeline does not have before the job starts.
func TestJobMigrationValidation(t *testing.T) {
	tuples := crashTuples(60)
	pat := crashPatterns()[0]
	bad := []Migration{
		{Stage: 0, Bucket: 0, To: 1},  // Map stage holds no state
		{Stage: 9, Bucket: 0, To: 1},  // no such stage
		{Stage: 1, Bucket: 5, To: 1},  // bucket out of range
		{Stage: 1, Bucket: 0, To: 5},  // worker out of range
		{Stage: 1, Bucket: -1, To: 1}, // negative bucket
		{Stage: 1, Bucket: 0, To: -1}, // negative worker
	}
	for i, mg := range bad {
		base := t.TempDir()
		job := &Job{
			Pipeline:        crashPipeline(pat, filepath.Join(base, "state"), nil, 1<<10),
			Source:          NewSliceSource(tuples),
			Dir:             filepath.Join(base, "job"),
			CheckpointEvery: 25,
			Migrations:      []Migration{mg},
		}
		if _, err := job.Run(); err == nil {
			t.Fatalf("plan %d (%+v) was accepted", i, mg)
		}
	}
}

// FuzzDecodeMigrationRecord throws corrupt bytes at both migration
// decoders — the migration journal and the JOB v3 routing extension.
// Neither may panic, and anything that decodes must re-encode into a
// form that decodes to the same value.
func FuzzDecodeMigrationRecord(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte(migJournalMagic))
	f.Add(encodeMigrationJournal(nil))
	real := encodeMigrationJournal([]MigrationRecord{
		{Seq: 1, Stage: 1, Bucket: 0, From: 0, To: 1, BaseGen: 2, State: MigStateCommitted},
		{Seq: 2, Stage: 1, Bucket: 1, From: 1, To: 0, BaseGen: 4, State: MigStateAborted, Detail: "prepare: boom"},
	})
	f.Add(real)
	f.Add(real[:len(real)/2])
	flipped := append([]byte(nil), real...)
	flipped[len(flipped)/3] ^= 0x10
	f.Add(flipped)
	meta := encodeJobMeta(JobMeta{
		Gen: 3, Offset: 291, StagePars: []int64{2, 2}, Routing: [][]int64{nil, {1, 0}},
	})
	f.Add(meta)
	f.Add(meta[:len(meta)-3])
	f.Fuzz(func(t *testing.T, b []byte) {
		if recs, err := decodeMigrationJournal(b); err == nil {
			again, err := decodeMigrationJournal(encodeMigrationJournal(recs))
			if err != nil {
				t.Fatalf("re-encode failed: %v", err)
			}
			if len(again) != len(recs) {
				t.Fatalf("re-encode changed record count: %d vs %d", len(again), len(recs))
			}
		}
		if m, err := decodeJobMeta(b); err == nil {
			if _, err := decodeJobMeta(encodeJobMeta(m)); err != nil {
				t.Fatalf("meta re-encode failed: %v", err)
			}
		}
	})
}
