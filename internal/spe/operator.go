package spe

import (
	"container/heap"
	"fmt"
	"sort"

	"flowkv/internal/statebackend"
	"flowkv/internal/window"
)

// WindowOperator is one physical window operator worker: it owns a state
// backend instance, assigns tuples to windows, maintains event-time
// timers, and fires triggers as the watermark advances. It is driven by a
// single goroutine.
type WindowOperator struct {
	spec    OperatorSpec
	backend statebackend.Backend
	emit    func(Tuple)
	kind    window.Kind
	wm      int64

	// Aligned windows (fixed/sliding/global): a shared trigger per
	// window, plus the window's key set for backends without bulk reads
	// and for incremental (per-key) aggregates.
	aligned     map[window.Window]map[string]struct{}
	alignedHeap windowHeap

	// Session windows: per-key merged sessions plus one armed timer per
	// key (re-armed on pop), so the timer heap stays proportional to the
	// number of live keys rather than the number of session extensions.
	sessions map[string][]*session
	armedAt  map[string]int64

	// Custom (unknown) windows: per (key, window) registration holding
	// the window's maximum tuple timestamp (fed to the ETT profiler).
	custom map[string]map[window.Window]int64

	timers timerHeap

	// Count windows: per-key element counters.
	counts map[string]int64

	// Evaluation counters.
	resultsEmitted int64
	lateDropped    int64
	triggersFired  int64
}

// session is one live session window of a key. cur is the merged
// boundary; initials are the fixed initial boundaries under which state
// was stored (§4.2: FlowKV identifies AUR state by the initial window
// boundary). Incremental aggregation migrates state so only initials[0]
// holds the accumulator; holistic aggregation reads all of them at
// trigger time.
type session struct {
	cur      window.Window
	initials []window.Window
}

type timerEntry struct {
	at  int64
	key string
	w   window.Window // custom windows; zero for sessions
}

type timerHeap []timerEntry

func (h timerHeap) Len() int           { return len(h) }
func (h timerHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h timerHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)        { *h = append(*h, x.(timerEntry)) }
func (h *timerHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

type windowHeap []window.Window

func (h windowHeap) Len() int           { return len(h) }
func (h windowHeap) Less(i, j int) bool { return h[i].End < h[j].End }
func (h windowHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *windowHeap) Push(x any)        { *h = append(*h, x.(window.Window)) }
func (h *windowHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// NewWindowOperator builds an operator worker over the given backend.
func NewWindowOperator(spec OperatorSpec, backend statebackend.Backend, emit func(Tuple)) (*WindowOperator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &WindowOperator{
		spec:     spec,
		backend:  backend,
		emit:     emit,
		kind:     spec.Assigner.Kind(),
		wm:       -1 << 62,
		aligned:  make(map[window.Window]map[string]struct{}),
		sessions: make(map[string][]*session),
		armedAt:  make(map[string]int64),
		custom:   make(map[string]map[window.Window]int64),
		counts:   make(map[string]int64),
	}, nil
}

// Backend returns the operator's state backend (for stats collection).
func (o *WindowOperator) Backend() statebackend.Backend { return o.backend }

// setBackend replaces the operator's state backend. Live migration uses
// it after rebuilding a worker's store under an aligned barrier; the
// caller guarantees the worker goroutine is parked while it runs.
func (o *WindowOperator) setBackend(b statebackend.Backend) { o.backend = b }

// OnTuple processes one input tuple.
func (o *WindowOperator) OnTuple(t Tuple) error {
	switch o.kind {
	case window.Session:
		return o.onSessionTuple(t)
	case window.Count:
		return o.onCountTuple(t)
	case window.Custom:
		return o.onCustomTuple(t)
	default:
		return o.onAlignedTuple(t)
	}
}

func (o *WindowOperator) addState(t Tuple, w window.Window) error {
	if o.spec.IsHolistic() {
		return o.backend.Append(t.Key, t.Value, w, t.TS)
	}
	acc, ok, err := o.backend.GetAgg(t.Key, w)
	if err != nil {
		return err
	}
	if !ok {
		acc = nil
	}
	acc = o.spec.Incremental.Add(acc, t)
	return o.backend.PutAgg(t.Key, w, acc)
}

func (o *WindowOperator) onAlignedTuple(t Tuple) error {
	for _, w := range o.spec.Assigner.Assign(t.TS) {
		if w.End <= o.wm {
			o.lateDropped++
			continue
		}
		set := o.aligned[w]
		if set == nil {
			set = make(map[string]struct{})
			o.aligned[w] = set
			heap.Push(&o.alignedHeap, w)
		}
		set[string(t.Key)] = struct{}{}
		if err := o.addState(t, w); err != nil {
			return err
		}
	}
	return nil
}

func (o *WindowOperator) onSessionTuple(t Tuple) error {
	sa, ok := o.spec.Assigner.(window.SessionAssigner)
	if !ok {
		return fmt.Errorf("spe: session operator requires SessionAssigner")
	}
	if t.TS < o.wm {
		o.lateDropped++
		return nil
	}
	key := string(t.Key)
	proto := window.Window{Start: t.TS, End: t.TS + sa.Gap}

	// Merge the proto window with every overlapping session of the key.
	var absorbed []*session
	var kept []*session
	merged := proto
	for _, s := range o.sessions[key] {
		if s.cur.Overlaps(merged) {
			absorbed = append(absorbed, s)
			merged = merged.Cover(s.cur)
		} else {
			kept = append(kept, s)
		}
	}
	var cur *session
	switch {
	case len(absorbed) == 0:
		cur = &session{cur: merged, initials: []window.Window{proto}}
	case o.spec.IsHolistic():
		// Union the constituents' initial windows; state stays put.
		cur = &session{cur: merged}
		for _, s := range absorbed {
			cur.initials = append(cur.initials, s.initials...)
		}
	default:
		// Migrate accumulators into the earliest constituent's initial.
		sort.Slice(absorbed, func(i, j int) bool { return absorbed[i].cur.Before(absorbed[j].cur) })
		cur = &session{cur: merged, initials: absorbed[0].initials[:1]}
		var acc []byte
		haveAcc := false
		for _, s := range absorbed {
			a, ok, err := o.backend.TakeAgg(t.Key, s.initials[0])
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			if !haveAcc {
				acc, haveAcc = a, true
			} else {
				acc = o.spec.Incremental.Merge(acc, a)
			}
		}
		if haveAcc {
			if err := o.backend.PutAgg(t.Key, cur.initials[0], acc); err != nil {
				return err
			}
		}
	}
	o.sessions[key] = append(kept, cur)
	o.armSession(key)
	return o.addState(t, cur.initials[0])
}

// armSession ensures one timer is scheduled at the earliest end among the
// key's sessions. Extensions that move ends later re-arm lazily when the
// stale timer pops, so the heap does not grow per tuple.
func (o *WindowOperator) armSession(key string) {
	list := o.sessions[key]
	if len(list) == 0 {
		delete(o.armedAt, key)
		return
	}
	min := list[0].cur.End
	for _, s := range list[1:] {
		if s.cur.End < min {
			min = s.cur.End
		}
	}
	if cur, ok := o.armedAt[key]; !ok || min < cur {
		heap.Push(&o.timers, timerEntry{at: min, key: key})
		o.armedAt[key] = min
	}
}

func (o *WindowOperator) onCountTuple(t Tuple) error {
	ca, ok := o.spec.Assigner.(window.CountAssigner)
	if !ok {
		return fmt.Errorf("spe: count operator requires CountAssigner")
	}
	key := string(t.Key)
	seq := o.counts[key]
	o.counts[key] = seq + 1
	w := ca.AssignNth(seq)
	if err := o.addState(t, w); err != nil {
		return err
	}
	if (seq+1)%ca.Size == 0 {
		// The window is complete: trigger immediately.
		return o.fireKeyWindow(t.Key, w, t.TS, t.WallNS)
	}
	return nil
}

func (o *WindowOperator) onCustomTuple(t Tuple) error {
	for _, w := range o.spec.Assigner.Assign(t.TS) {
		if w.End <= o.wm {
			o.lateDropped++
			continue
		}
		key := string(t.Key)
		set := o.custom[key]
		if set == nil {
			set = make(map[window.Window]int64)
			o.custom[key] = set
		}
		if maxTS, seen := set[w]; !seen {
			set[w] = t.TS
			heap.Push(&o.timers, timerEntry{at: w.End, key: key, w: w})
		} else if t.TS > maxTS {
			set[w] = t.TS
		}
		if err := o.addState(t, w); err != nil {
			return err
		}
	}
	return nil
}

// OnWatermark advances event time and fires every due trigger. wallNS is
// the wall clock carried by the watermark; it stamps emitted results so
// the sink can measure latency.
func (o *WindowOperator) OnWatermark(wm int64, wallNS int64) error {
	if wm <= o.wm {
		return nil
	}
	o.wm = wm

	// Aligned windows fire when the watermark passes their end.
	for o.alignedHeap.Len() > 0 && o.alignedHeap[0].End <= wm {
		w := heap.Pop(&o.alignedHeap).(window.Window)
		if err := o.fireAligned(w, wallNS); err != nil {
			return err
		}
	}
	// Per-key timers (sessions and custom windows).
	for o.timers.Len() > 0 && o.timers[0].at <= wm {
		e := heap.Pop(&o.timers).(timerEntry)
		if e.w != (window.Window{}) {
			if err := o.fireCustom(e, wallNS); err != nil {
				return err
			}
			continue
		}
		if err := o.fireSessionTimer(e, wallNS); err != nil {
			return err
		}
	}
	return nil
}

func (o *WindowOperator) resultTS(w window.Window) int64 {
	if o.spec.ResultTS != nil {
		return o.spec.ResultTS(w)
	}
	return w.End - 1
}

func (o *WindowOperator) fireAligned(w window.Window, wallNS int64) error {
	keys := o.aligned[w]
	delete(o.aligned, w)
	o.triggersFired++
	ts := o.resultTS(w)

	if o.spec.IsHolistic() {
		// Bulk window read when the backend supports it; the same key may
		// arrive in several partitions (gradual loading), so groups merge
		// before the holistic function runs.
		groups := make(map[string][][]byte, len(keys))
		ok, err := o.backend.ReadWindow(w, func(key []byte, values [][]byte) error {
			groups[string(key)] = append(groups[string(key)], values...)
			return nil
		})
		if err != nil {
			return err
		}
		if !ok {
			for key := range keys {
				vals, err := o.backend.ReadAppended([]byte(key), w)
				if err != nil {
					return err
				}
				if vals != nil {
					groups[key] = vals
				}
			}
		}
		names := make([]string, 0, len(groups))
		for k := range groups {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			if out := o.spec.Holistic.Result([]byte(k), groups[k]); out != nil {
				o.send(Tuple{Key: []byte(k), Value: out, TS: ts, WallNS: wallNS})
			}
		}
		return nil
	}

	names := make([]string, 0, len(keys))
	for k := range keys {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		acc, ok, err := o.backend.TakeAgg([]byte(k), w)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		if out := o.spec.Incremental.Result(acc); out != nil {
			o.send(Tuple{Key: []byte(k), Value: out, TS: ts, WallNS: wallNS})
		}
	}
	return nil
}

func (o *WindowOperator) fireSessionTimer(e timerEntry, wallNS int64) error {
	if o.armedAt[e.key] != e.at {
		return nil // superseded by an earlier re-arm
	}
	delete(o.armedAt, e.key)
	// Fire every due session of the key, then re-arm for the rest.
	list := o.sessions[e.key]
	kept := list[:0:0]
	var due []*session
	for _, s := range list {
		if s.cur.End <= o.wm {
			due = append(due, s)
		} else {
			kept = append(kept, s)
		}
	}
	if len(kept) == 0 {
		delete(o.sessions, e.key)
	} else {
		o.sessions[e.key] = kept
	}
	for _, s := range due {
		if err := o.fireSession([]byte(e.key), s, wallNS); err != nil {
			return err
		}
	}
	o.armSession(e.key)
	return nil
}

func (o *WindowOperator) fireSession(key []byte, s *session, wallNS int64) error {
	o.triggersFired++
	ts := o.resultTS(s.cur)
	if o.spec.IsHolistic() {
		initials := append([]window.Window(nil), s.initials...)
		sort.Slice(initials, func(i, j int) bool { return initials[i].Before(initials[j]) })
		var values [][]byte
		for _, iw := range initials {
			vals, err := o.backend.ReadAppended(key, iw)
			if err != nil {
				return err
			}
			values = append(values, vals...)
		}
		if len(values) == 0 {
			return nil
		}
		if out := o.spec.Holistic.Result(key, values); out != nil {
			o.send(Tuple{Key: key, Value: out, TS: ts, WallNS: wallNS})
		}
		return nil
	}
	acc, ok, err := o.backend.TakeAgg(key, s.initials[0])
	if err != nil || !ok {
		return err
	}
	if out := o.spec.Incremental.Result(acc); out != nil {
		o.send(Tuple{Key: key, Value: out, TS: ts, WallNS: wallNS})
	}
	return nil
}

func (o *WindowOperator) fireCustom(e timerEntry, wallNS int64) error {
	set := o.custom[e.key]
	if set == nil {
		return nil
	}
	maxTS, ok := set[e.w]
	if !ok {
		return nil
	}
	delete(set, e.w)
	if len(set) == 0 {
		delete(o.custom, e.key)
	}
	if o.spec.Profiler != nil {
		// Runtime profiling (paper §8): report the observed trigger so
		// FlowKV can learn ETTs for this custom window function.
		o.spec.Profiler.ObserveTrigger(e.w, maxTS, e.at)
	}
	return o.fireKeyWindow([]byte(e.key), e.w, o.resultTS(e.w), wallNS)
}

// fireKeyWindow triggers one (key, window) state (count/custom windows).
func (o *WindowOperator) fireKeyWindow(key []byte, w window.Window, ts int64, wallNS int64) error {
	o.triggersFired++
	if o.spec.IsHolistic() {
		vals, err := o.backend.ReadAppended(key, w)
		if err != nil {
			return err
		}
		if vals == nil {
			return nil
		}
		if out := o.spec.Holistic.Result(key, vals); out != nil {
			o.send(Tuple{Key: key, Value: out, TS: ts, WallNS: wallNS})
		}
		return nil
	}
	acc, ok, err := o.backend.TakeAgg(key, w)
	if err != nil || !ok {
		return err
	}
	if out := o.spec.Incremental.Result(acc); out != nil {
		o.send(Tuple{Key: key, Value: out, TS: ts, WallNS: wallNS})
	}
	return nil
}

func (o *WindowOperator) send(t Tuple) {
	o.resultsEmitted++
	o.emit(t)
}

// Finish fires every remaining window: the final watermark plus partial
// count windows (end-of-stream flush).
func (o *WindowOperator) Finish(wallNS int64) error {
	if o.kind == window.Count {
		ca := o.spec.Assigner.(window.CountAssigner)
		keys := make([]string, 0, len(o.counts))
		for k := range o.counts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			seq := o.counts[k]
			if seq%ca.Size == 0 {
				continue // no partial window
			}
			w := ca.AssignNth(seq - 1)
			if err := o.fireKeyWindow([]byte(k), w, seq-1, wallNS); err != nil {
				return err
			}
		}
		o.counts = make(map[string]int64)
	}
	return o.OnWatermark(window.MaxTime, wallNS)
}

// OperatorStats reports an operator worker's counters.
type OperatorStats struct {
	// ResultsEmitted counts emitted result tuples.
	ResultsEmitted int64
	// LateDropped counts tuples dropped as late.
	LateDropped int64
	// TriggersFired counts window triggers.
	TriggersFired int64
}

// Stats returns the operator's counters.
func (o *WindowOperator) Stats() OperatorStats {
	return OperatorStats{
		ResultsEmitted: o.resultsEmitted,
		LateDropped:    o.lateDropped,
		TriggersFired:  o.triggersFired,
	}
}
