package spe

import (
	"fmt"
	"path/filepath"
	"strings"

	"flowkv/internal/binio"
	"flowkv/internal/core"
	"flowkv/internal/faultfs"
	"flowkv/internal/statebackend"
	"flowkv/internal/window"
)

// Rescaling on restart. A committed generation carries an implicit
// key-range manifest: stage s was checkpointed by StagePars[s] workers,
// and worker w's checkpoint holds exactly the keys with
// routeKey(key, StagePars[s]) == w. When Resume runs the stage at a
// different parallelism, the committed state is split/merged along those
// key ranges before replay:
//
//   - Store state (AAR/AUR/RMW): each old worker's checkpoint is
//     restored into a scratch store, enumerated entry by entry
//     (core.ForEachState — non-destructive, so the committed checkpoint
//     stays intact for a crash during recovery), and every entry is
//     re-appended into the new worker's backend chosen by rehashing its
//     key. Appended values keep their order (a single old worker held
//     all values of a key, and they re-append in order); window
//     boundaries route wholesale with their key.
//   - Operator snapshots: the old workers' control states are decoded,
//     their per-key registries re-routed by the same hash, and fresh
//     snapshots encoded for the new workers (repartitionWindowSnaps /
//     repartitionJoinSnaps).
//
// Replay then proceeds from the committed source offset exactly as a
// same-parallelism resume: barriers land at the same source offsets and
// watermarks at the same tuples (the cadence is parallelism-independent),
// so the committed ledger stays byte-identical to an uninterrupted run
// at either parallelism.

// opSnapshotter is the snapshot/restore contract job checkpoints need
// from a stateful operator. WindowOperator and IntervalJoinOperator
// implement it.
type opSnapshotter interface {
	statefulOperator
	snapshotState() []byte
	restoreState([]byte) error
	// setBackend swaps the operator's state backend in place — the live
	// migration path rebuilds a parked worker's store and re-points the
	// operator at it without reconstructing the operator.
	setBackend(statebackend.Backend)
}

var (
	_ opSnapshotter = (*WindowOperator)(nil)
	_ opSnapshotter = (*IntervalJoinOperator)(nil)
)

// rescaleDirName is the scratch area used while re-routing committed
// worker checkpoints; cleared before and after use.
const rescaleDirName = ".rescale"

// repartitionWindowSnaps re-routes committed window-operator snapshots
// onto a new worker set: per-key registries (aligned key sets, sessions,
// custom windows, count cursors) move to the worker that now owns their
// key, watermarks carry over (equal across workers at a barrier), and
// the job-total counters land on worker 0 so job-level sums are
// unchanged.
func repartitionWindowSnaps(snaps [][]byte, newPar int) ([][]byte, error) {
	outs := make([]*WindowOperator, newPar)
	for i := range outs {
		outs[i] = &WindowOperator{
			wm:       -1 << 62,
			aligned:  make(map[window.Window]map[string]struct{}),
			sessions: make(map[string][]*session),
			armedAt:  make(map[string]int64),
			custom:   make(map[string]map[window.Window]int64),
			counts:   make(map[string]int64),
		}
	}
	var results, late, triggers int64
	wm := int64(-1 << 62)
	for _, snap := range snaps {
		tmp := &WindowOperator{}
		if err := tmp.restoreState(snap); err != nil {
			return nil, err
		}
		if tmp.wm > wm {
			wm = tmp.wm
		}
		results += tmp.resultsEmitted
		late += tmp.lateDropped
		triggers += tmp.triggersFired
		for w, keys := range tmp.aligned {
			for k := range keys {
				o := outs[routeKey([]byte(k), newPar)]
				set := o.aligned[w]
				if set == nil {
					set = make(map[string]struct{})
					o.aligned[w] = set
				}
				set[k] = struct{}{}
			}
		}
		for k, list := range tmp.sessions {
			outs[routeKey([]byte(k), newPar)].sessions[k] = list
		}
		for k, set := range tmp.custom {
			outs[routeKey([]byte(k), newPar)].custom[k] = set
		}
		for k, n := range tmp.counts {
			outs[routeKey([]byte(k), newPar)].counts[k] = n
		}
	}
	out := make([][]byte, newPar)
	for i, o := range outs {
		o.wm = wm
		if i == 0 {
			o.resultsEmitted, o.lateDropped, o.triggersFired = results, late, triggers
		}
		out[i] = o.snapshotState()
	}
	return out, nil
}

// repartitionJoinSnaps is repartitionWindowSnaps for interval-join
// operators: both sides' bucket registries re-route per key.
func repartitionJoinSnaps(snaps [][]byte, newPar int) ([][]byte, error) {
	outs := make([]*IntervalJoinOperator, newPar)
	for i := range outs {
		outs[i] = &IntervalJoinOperator{
			wm: -1 << 62,
			buckets: map[Side]map[window.Window]map[string]struct{}{
				Left:  make(map[window.Window]map[string]struct{}),
				Right: make(map[window.Window]map[string]struct{}),
			},
			expiry: map[Side]*windowHeap{Left: {}, Right: {}},
		}
	}
	var results, late int64
	wm := int64(-1 << 62)
	for _, snap := range snaps {
		tmp := &IntervalJoinOperator{}
		if err := tmp.restoreState(snap); err != nil {
			return nil, err
		}
		if tmp.wm > wm {
			wm = tmp.wm
		}
		results += tmp.results
		late += tmp.late
		for _, side := range []Side{Left, Right} {
			for w, keys := range tmp.buckets[side] {
				for k := range keys {
					o := outs[routeKey([]byte(k), newPar)]
					set := o.buckets[side][w]
					if set == nil {
						set = make(map[string]struct{})
						o.buckets[side][w] = set
					}
					set[k] = struct{}{}
				}
			}
		}
	}
	out := make([][]byte, newPar)
	for i, o := range outs {
		o.wm = wm
		if i == 0 {
			o.results, o.late = results, late
		}
		out[i] = o.snapshotState()
	}
	return out, nil
}

// repartitionOpSnaps re-routes one stage's committed operator snapshots
// onto a new worker set.
func repartitionOpSnaps(snaps [][]byte, newPar int, join bool) ([][]byte, error) {
	if join {
		return repartitionJoinSnaps(snaps, newPar)
	}
	return repartitionWindowSnaps(snaps, newPar)
}

// shardSnapsMagic frames the per-worker operator snapshots of one
// shared-backend stage inside the stage's single checkpoint metadata.
// v2 appends the drop tracker's fully-fired window queue — windows every
// owner has drained but whose merged state still waits on the stage-min
// watermark — so a resumed stage drops them instead of leaking orphan
// window state; v1 frames (no queue) still decode with an empty queue.
const (
	shardSnapsMagic   = "flowkv-shardsnaps2\n"
	shardSnapsMagicV1 = "flowkv-shardsnaps1\n"
)

// maxShardSnaps bounds the decoded worker count against corrupt input.
const maxShardSnaps = 1 << 16

func encodeShardSnaps(snaps [][]byte, fired []window.Window) []byte {
	b := []byte(shardSnapsMagic)
	b = binio.PutUvarint(b, uint64(len(snaps)))
	for _, s := range snaps {
		b = binio.PutBytes(b, s)
	}
	b = binio.PutUvarint(b, uint64(len(fired)))
	for _, w := range fired {
		b = binio.PutVarint(b, w.Start)
		b = binio.PutVarint(b, w.End)
	}
	return b
}

func decodeShardSnaps(b []byte) (snaps [][]byte, fired []window.Window, err error) {
	v1 := false
	d := snapDecoder{b: b}
	if err := d.magic(shardSnapsMagic); err != nil {
		v1 = true
		d = snapDecoder{b: b}
		if err := d.magic(shardSnapsMagicV1); err != nil {
			return nil, nil, err
		}
	}
	n := d.uvarint()
	if n > maxShardSnaps {
		return nil, nil, fmt.Errorf("spe: corrupt shared-stage snapshot: %d workers", n)
	}
	snaps = make([][]byte, 0, n)
	for i := uint64(0); i < n; i++ {
		snaps = append(snaps, d.bytes())
	}
	if !v1 {
		f := d.uvarint()
		if f > maxShardSnaps {
			return nil, nil, fmt.Errorf("spe: corrupt shared-stage snapshot: %d fired windows", f)
		}
		for i := uint64(0); i < f; i++ {
			w := window.Window{Start: d.varint(), End: d.varint()}
			fired = append(fired, w)
		}
	}
	if d.err != nil {
		return nil, nil, fmt.Errorf("spe: corrupt shared-stage snapshot: %w", d.err)
	}
	return snaps, fired, nil
}

// rerouteCheckpointState restores one committed worker checkpoint into a
// scratch store, re-appends every live unit of state into the new worker
// set's (empty) backends — route maps a backend key to its new worker —
// and returns the operator snapshot the checkpoint carried. The
// committed checkpoint directory is only read, never modified — a crash
// mid-rescale leaves it fully intact for the next Resume.
func rerouteCheckpointState(fsys faultfs.FS, cpDir, scratchDir string, backends []statebackend.Backend, route func(key []byte) int) ([]byte, error) {
	pat, inst, err := core.VerifyCheckpointDir(fsys, cpDir)
	if err != nil {
		return nil, err
	}
	if err := fsys.RemoveAll(scratchDir); err != nil {
		return nil, err
	}
	st, err := core.OpenPattern(pat, window.Custom, core.Options{
		Dir:       scratchDir,
		Instances: inst,
		FS:        fsys,
	})
	if err != nil {
		return nil, err
	}
	snap, rerr := st.RestoreWithMeta(cpDir)
	if rerr != nil {
		st.Destroy()
		return nil, rerr
	}
	ferr := st.ForEachState(func(e core.StateEntry) error {
		nb := backends[route(e.Key)]
		if e.HasAgg {
			return nb.PutAgg(e.Key, e.Window, e.Agg)
		}
		for _, v := range e.Values {
			if err := nb.Append(e.Key, v, e.Window, e.MaxTS); err != nil {
				return err
			}
		}
		return nil
	})
	derr := st.Destroy()
	if ferr != nil {
		return nil, ferr
	}
	if derr != nil {
		return nil, derr
	}
	return snap, nil
}

// CommittedStage describes one stage's checkpoint layout inside a
// committed generation directory.
type CommittedStage struct {
	// Workers is the parallelism the stage was committed at — its
	// key-range manifest: worker w held the keys with
	// routeKey(key, Workers) == w.
	Workers int
	// Shared marks a single-owner shared-backend checkpoint (one store
	// cut carrying all workers' operator snapshots).
	Shared bool
}

// CommittedLayout scans a committed generation directory and returns the
// checkpoint layout per stage index. Stages without state (Map stages)
// do not appear. A nil fsys uses the real filesystem.
func CommittedLayout(fsys faultfs.FS, dir string, gen int64) (map[int]CommittedStage, error) {
	if fsys == nil {
		fsys = faultfs.OS
	}
	ents, err := fsys.ReadDir(filepath.Join(dir, genDirName(gen)))
	if err != nil {
		return nil, fmt.Errorf("spe: read generation %d: %w", gen, err)
	}
	out := make(map[int]CommittedStage)
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		var si, wi int
		if strings.HasSuffix(e.Name(), "-shared") {
			if n, _ := fmt.Sscanf(e.Name(), "s%02d-shared", &si); n == 1 {
				cs := out[si]
				cs.Shared = true
				if cs.Workers == 0 {
					cs.Workers = -1 // worker count lives in the snapshot framing
				}
				out[si] = cs
			}
			continue
		}
		if n, _ := fmt.Sscanf(e.Name(), "s%02d-w%02d", &si, &wi); n == 2 {
			cs := out[si]
			if wi+1 > cs.Workers {
				cs.Workers = wi + 1
			}
			out[si] = cs
		}
	}
	return out, nil
}

// WorkerForKey reports which worker of a par-way stage owns key — the
// hash partition that doubles as the checkpoint key-range manifest.
func WorkerForKey(key []byte, par int) int { return routeKey(key, par) }
