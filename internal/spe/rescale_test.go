package spe

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"flowkv/internal/core"
	"flowkv/internal/faultfs"
	"flowkv/internal/statebackend"
	"flowkv/internal/window"
)

// The rescale battery: kill a checkpointed job at a random point, resume
// it at a DIFFERENT stage parallelism (down one, up one, doubled), and
// require the committed sink ledger to come out byte-identical to the
// uninterrupted golden run — exactly-once output across restarts that
// split/merge the committed key ranges.

// crashPipelineAt is crashPipeline with a configurable window-stage
// parallelism (the knob the rescale battery turns between resumes).
func crashPipelineAt(pat crashPattern, stateDir string, fsys faultfs.FS, bufBytes int64, par int) *Pipeline {
	spec := pat.spec
	opts := core.Options{Instances: 2, WriteBufferBytes: bufBytes}
	if fsys != nil {
		opts.FS = fsys
	}
	return &Pipeline{
		WatermarkEvery: 25,
		Stages: []Stage{
			{
				Name: "tag", Parallelism: 2,
				Map: func(t Tuple, emit func(Tuple)) { emit(t) },
			},
			{
				Name: "win", Parallelism: par,
				Window: &spec,
				NewBackend: func(w int) (statebackend.Backend, error) {
					return statebackend.Open(statebackend.Config{
						Kind:       statebackend.KindFlowKV,
						Dir:        filepath.Join(stateDir, fmt.Sprintf("w%02d", w)),
						Agg:        pat.agg,
						WindowKind: pat.wk,
						Assigner:   spec.Assigner,
						FlowKV:     opts,
					})
				},
			},
		},
	}
}

// joinCrashTuples builds a deterministic two-sided stream with enough key
// collisions that interval joins fire throughout.
func joinCrashTuples(n int) []Tuple {
	rng := rand.New(rand.NewSource(0x10e5ca1e))
	tuples := make([]Tuple, 0, n)
	ts := int64(0)
	for i := 0; i < n; i++ {
		ts += int64(rng.Intn(4))
		side := Left
		if rng.Intn(2) == 0 {
			side = Right
		}
		key := fmt.Sprintf("k%02d", rng.Intn(7))
		tuples = append(tuples, sideTuple(key, side, fmt.Sprintf("p%04d", i), ts))
	}
	return tuples
}

// joinJobPipeline builds a checkpointable interval-join pipeline: a
// stateless map stage feeding a par-way join stage over FlowKV AUR.
func joinJobPipeline(stateDir string, fsys faultfs.FS, bufBytes int64, par int) *Pipeline {
	spec := joinSpec(-7, 13)
	opts := core.Options{Instances: 2, WriteBufferBytes: bufBytes}
	if fsys != nil {
		opts.FS = fsys
	}
	return &Pipeline{
		WatermarkEvery: 25,
		Stages: []Stage{
			{
				Name: "tag", Parallelism: 2,
				Map: func(t Tuple, emit func(Tuple)) { emit(t) },
			},
			{
				Name: "join", Parallelism: par,
				Join: &spec,
				NewBackend: func(w int) (statebackend.Backend, error) {
					return statebackend.Open(statebackend.Config{
						Kind:       statebackend.KindFlowKV,
						Dir:        filepath.Join(stateDir, fmt.Sprintf("w%02d", w)),
						Agg:        core.AggHolistic,
						WindowKind: window.Custom, // AUR
						FlowKV:     opts,
					})
				},
			},
		},
	}
}

// rescaleCase is one pipeline shape exercised by the rescale battery.
type rescaleCase struct {
	name   string
	tuples []Tuple
	// mk builds the job with the window/join stage at parallelism par.
	mk func(base string, par int, src *SliceSource, kill int64) *Job
}

func rescaleCases() []rescaleCase {
	const every = 97
	var cases []rescaleCase
	for _, pat := range crashPatterns() {
		pat := pat
		cases = append(cases, rescaleCase{
			name:   pat.name,
			tuples: crashTuples(600),
			mk: func(base string, par int, src *SliceSource, kill int64) *Job {
				return &Job{
					Pipeline:        crashPipelineAt(pat, filepath.Join(base, "state"), nil, 1<<10, par),
					Source:          src,
					Dir:             filepath.Join(base, "job"),
					CheckpointEvery: every,
					KillAfterTuples: kill,
				}
			},
		})
	}
	cases = append(cases, rescaleCase{
		name:   "interval-join",
		tuples: joinCrashTuples(600),
		mk: func(base string, par int, src *SliceSource, kill int64) *Job {
			return &Job{
				Pipeline:        joinJobPipeline(filepath.Join(base, "state"), nil, 1<<10, par),
				Source:          src,
				Dir:             filepath.Join(base, "job"),
				CheckpointEvery: every,
				KillAfterTuples: kill,
			}
		},
	})
	return cases
}

// goldenFor runs the case uninterrupted at parallelism 2 and returns the
// committed ledger bytes.
func goldenFor(t *testing.T, c rescaleCase) []byte {
	t.Helper()
	base := t.TempDir()
	res, err := c.mk(base, 2, NewSliceSource(c.tuples), 0).Run()
	if err != nil {
		t.Fatalf("golden run: %v", err)
	}
	if !res.Final {
		t.Fatal("golden run did not finish")
	}
	b, err := os.ReadFile(filepath.Join(base, "job", ledgerName))
	if err != nil {
		t.Fatalf("golden ledger: %v", err)
	}
	if len(b) == 0 {
		t.Fatal("golden run produced no sink output")
	}
	return b
}

// TestJobRescaleResumeExactlyOnce is the rescale battery: each iteration
// starts the job at parallelism 2, kills it at a random point, and
// resumes at a different parallelism — down one (merge), up one (split),
// and doubled — possibly killing and re-rescaling several times. The
// final ledger must match the parallelism-2 golden run byte-for-byte.
func TestJobRescaleResumeExactlyOnce(t *testing.T) {
	iters := (crashIters(t) + 1) / 2
	rescalePars := []int{1, 3, 4} // -1, +1, 2x of the golden parallelism 2
	for _, c := range rescaleCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			golden := goldenFor(t, c)
			rng := rand.New(rand.NewSource(int64(0x5ca1e + len(c.name)*7919)))
			base := t.TempDir()
			for i := 0; i < iters; i++ {
				dir := filepath.Join(base, fmt.Sprintf("i%03d", i))
				src := NewSliceSource(c.tuples)
				par := rescalePars[i%len(rescalePars)]
				res, err := c.mk(dir, 2, src, 1+rng.Int63n(int64(len(c.tuples)))).Run()
				for attempts := 0; err != nil; attempts++ {
					if !errors.Is(err, ErrJobKilled) {
						t.Fatalf("iter %d: unexpected error: %v", i, err)
					}
					if attempts > 30 {
						t.Fatalf("iter %d: still killed after %d attempts", i, attempts)
					}
					var kill int64
					if rng.Intn(2) == 0 {
						kill = 1 + rng.Int63n(int64(len(c.tuples)))
					}
					res, err = runOrResume(c.mk(dir, par, src, kill))
					// Further resumes may land on yet another parallelism.
					par = rescalePars[rng.Intn(len(rescalePars))]
				}
				if !res.Final {
					t.Fatalf("iter %d: job not final", i)
				}
				checkLedger(t, filepath.Join(dir, "job"), golden)
			}
		})
	}
}

// sharedJobPipeline builds a checkpointable shared-backend pipeline: a
// par-way holistic fixed-window stage where every worker hits one FlowKV
// AAR store — the configuration whose barrier commit is a single-owner
// cut of the merged state.
func sharedJobPipeline(stateDir string, fsys faultfs.FS, par int) *Pipeline {
	assigner := window.FixedAssigner{Size: 64}
	spec := OperatorSpec{Assigner: assigner, Holistic: crashHolistic}
	opts := core.Options{Instances: 2, WriteBufferBytes: 1 << 10}
	if fsys != nil {
		opts.FS = fsys
	}
	return &Pipeline{
		WatermarkEvery: 25,
		Stages: []Stage{
			{
				Name: "tag", Parallelism: 2,
				Map: func(t Tuple, emit func(Tuple)) { emit(t) },
			},
			{
				Name: "win", Parallelism: par,
				ShareBackend: true,
				Window:       &spec,
				NewBackend: func(int) (statebackend.Backend, error) {
					return statebackend.Open(statebackend.Config{
						Kind:       statebackend.KindFlowKV,
						Dir:        filepath.Join(stateDir, "shared"),
						Agg:        core.AggHolistic,
						WindowKind: window.Fixed,
						Assigner:   assigner,
						FlowKV:     opts,
					})
				},
			},
		},
	}
}

// TestJobSharedBackendCrashResume runs the kill battery over a shared
// holistic+aligned stage: one checkpoint per barrier covers the merged
// store, restore fans the per-worker operator snapshots back out, and
// resumes may change the worker count (snapshots re-partition; the
// shared store needs no splitting). Ledger must match golden exactly.
func TestJobSharedBackendCrashResume(t *testing.T) {
	iters := (crashIters(t) + 1) / 2
	tuples := crashTuples(600)
	const every = 97
	mk := func(base string, par int, src *SliceSource, kill int64) *Job {
		return &Job{
			Pipeline:        sharedJobPipeline(filepath.Join(base, "state"), nil, par),
			Source:          src,
			Dir:             filepath.Join(base, "job"),
			CheckpointEvery: every,
			KillAfterTuples: kill,
		}
	}
	goldenBase := t.TempDir()
	res, err := mk(goldenBase, 2, NewSliceSource(tuples), 0).Run()
	if err != nil {
		t.Fatalf("golden run: %v", err)
	}
	if !res.Final {
		t.Fatal("golden run did not finish")
	}
	golden, err := os.ReadFile(filepath.Join(goldenBase, "job", ledgerName))
	if err != nil || len(golden) == 0 {
		t.Fatalf("golden ledger: %v (%d bytes)", err, len(golden))
	}
	rescalePars := []int{2, 1, 3, 4}
	rng := rand.New(rand.NewSource(0x5a7ed))
	base := t.TempDir()
	for i := 0; i < iters; i++ {
		dir := filepath.Join(base, fmt.Sprintf("i%03d", i))
		src := NewSliceSource(tuples)
		par := rescalePars[i%len(rescalePars)]
		res, err := mk(dir, 2, src, 1+rng.Int63n(int64(len(tuples)))).Run()
		for attempts := 0; err != nil; attempts++ {
			if !errors.Is(err, ErrJobKilled) {
				t.Fatalf("iter %d: unexpected error: %v", i, err)
			}
			if attempts > 30 {
				t.Fatalf("iter %d: still killed after %d attempts", i, attempts)
			}
			var kill int64
			if rng.Intn(2) == 0 {
				kill = 1 + rng.Int63n(int64(len(tuples)))
			}
			res, err = runOrResume(mk(dir, par, src, kill))
			par = rescalePars[rng.Intn(len(rescalePars))]
		}
		if !res.Final {
			t.Fatalf("iter %d: job not final", i)
		}
		checkLedger(t, filepath.Join(dir, "job"), golden)
	}
}

// TestJobCrashDuringCommitJoinAndShared pins the mid-checkpoint and
// mid-commit crash points for the two new checkpoint shapes: a crash
// while renaming an interval-join stage's store checkpoint, while
// renaming a shared stage's single-owner checkpoint, and while renaming
// the JOB file over either shape. Resume must land on the previous
// committed cut and converge to the golden ledger.
func TestJobCrashDuringCommitJoinAndShared(t *testing.T) {
	const every = 61
	shapes := []struct {
		name   string
		tuples []Tuple
		mk     func(base string, fsys faultfs.FS, src *SliceSource) *Job
	}{
		{
			name:   "join",
			tuples: joinCrashTuples(400),
			mk: func(base string, fsys faultfs.FS, src *SliceSource) *Job {
				return &Job{
					Pipeline:        joinJobPipeline(filepath.Join(base, "state"), fsys, 1<<10, 2),
					Source:          src,
					Dir:             filepath.Join(base, "job"),
					FS:              fsys,
					CheckpointEvery: every,
				}
			},
		},
		{
			name:   "shared",
			tuples: crashTuples(400),
			mk: func(base string, fsys faultfs.FS, src *SliceSource) *Job {
				return &Job{
					Pipeline:        sharedJobPipeline(filepath.Join(base, "state"), fsys, 2),
					Source:          src,
					Dir:             filepath.Join(base, "job"),
					FS:              fsys,
					CheckpointEvery: every,
				}
			},
		},
	}
	legs := []struct {
		name string
		rule faultfs.Rule
	}{
		{"checkpoint-rename", faultfs.Rule{Op: faultfs.OpRename, PathContains: "gen-", Crash: true}},
		{"second-checkpoint-rename", faultfs.Rule{Op: faultfs.OpRename, PathContains: "gen-", Nth: 5, Crash: true}},
		{"job-commit-rename", faultfs.Rule{Op: faultfs.OpRename, PathContains: "JOB", Crash: true}},
		{"ledger-sync", faultfs.Rule{Op: faultfs.OpSync, PathContains: ledgerName, Crash: true}},
	}
	for _, shape := range shapes {
		shape := shape
		t.Run(shape.name, func(t *testing.T) {
			t.Parallel()
			goldenBase := t.TempDir()
			res, err := shape.mk(goldenBase, nil, NewSliceSource(shape.tuples)).Run()
			if err != nil || !res.Final {
				t.Fatalf("golden run: final=%v err=%v", res != nil && res.Final, err)
			}
			golden, err := os.ReadFile(filepath.Join(goldenBase, "job", ledgerName))
			if err != nil || len(golden) == 0 {
				t.Fatalf("golden ledger: %v (%d bytes)", err, len(golden))
			}
			for _, leg := range legs {
				leg := leg
				t.Run(leg.name, func(t *testing.T) {
					base := t.TempDir()
					inj := faultfs.NewInjector(faultfs.OS)
					src := NewSliceSource(shape.tuples)
					mk := func() *Job { return shape.mk(base, inj, src) }
					inj.SetRule(leg.rule)
					if _, err := mk().Run(); err == nil {
						t.Fatal("run survived a crashed filesystem")
					}
					if !inj.Fired() {
						t.Fatal("fault did not fire")
					}
					inj.Reset()
					resumeToFinal(t, func(int64) *Job { return mk() }, golden)
				})
			}
		})
	}
}

// TestJobRescaleCrashDuringRecovery crashes the filesystem while a
// rescaling resume is splitting committed checkpoints through the scratch
// store. The committed generation is read-only during the re-route, so a
// second resume — at yet another parallelism — must still converge.
func TestJobRescaleCrashDuringRecovery(t *testing.T) {
	tuples := crashTuples(400)
	const every = 61
	pat := crashPatterns()[0] // AAR
	base := t.TempDir()
	inj := faultfs.NewInjector(faultfs.OS)
	src := NewSliceSource(tuples)
	mk := func(par int, kill int64) *Job {
		return &Job{
			Pipeline:        crashPipelineAt(pat, filepath.Join(base, "state"), inj, 1<<10, par),
			Source:          src,
			Dir:             filepath.Join(base, "job"),
			FS:              inj,
			CheckpointEvery: every,
			KillAfterTuples: kill,
		}
	}
	goldenBase := t.TempDir()
	goldenJob := &Job{
		Pipeline:        crashPipelineAt(pat, filepath.Join(goldenBase, "state"), nil, 1<<10, 2),
		Source:          NewSliceSource(tuples),
		Dir:             filepath.Join(goldenBase, "job"),
		CheckpointEvery: every,
	}
	if res, err := goldenJob.Run(); err != nil || !res.Final {
		t.Fatalf("golden run: err=%v", err)
	}
	golden, err := os.ReadFile(filepath.Join(goldenBase, "job", ledgerName))
	if err != nil || len(golden) == 0 {
		t.Fatalf("golden ledger: %v (%d bytes)", err, len(golden))
	}
	// Establish committed progress at parallelism 2, then kill.
	if _, err := mk(2, 250).Run(); !errors.Is(err, ErrJobKilled) {
		t.Fatalf("want ErrJobKilled, got %v", err)
	}
	// Crash inside the rescaling restore: the scratch re-route writes into
	// the .rescale area and the new workers' stores.
	inj.Reset()
	inj.SetRule(faultfs.Rule{Op: faultfs.OpWrite, PathContains: "state", Nth: 10, Crash: true})
	if _, err := mk(3, 0).Resume(); err == nil {
		t.Fatal("rescaling resume survived a crashed filesystem")
	}
	if !inj.Fired() {
		t.Fatal("recovery fault did not fire")
	}
	inj.Reset()
	// Converge at yet another parallelism.
	resumeToFinal(t, func(int64) *Job { return mk(4, 0) }, golden)
}

// TestOperatorSnapshotJoinReplay is the snapshot→restore→replay property
// test for the interval-join operator: cutting a stream at any point,
// checkpointing the backend with the operator snapshot as metadata,
// restoring both into fresh instances, and replaying the suffix must
// produce exactly the joins of an uninterrupted run.
func TestOperatorSnapshotJoinReplay(t *testing.T) {
	spec := joinSpec(-7, 13)
	mkBackend := func(dir string) statebackend.Backend {
		b, err := statebackend.Open(statebackend.Config{
			Kind:       statebackend.KindFlowKV,
			Dir:        dir,
			Agg:        core.AggHolistic,
			WindowKind: window.Custom, // AUR
			FlowKV:     core.Options{Instances: 2, WriteBufferBytes: 1 << 10},
		})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	cases := []struct {
		name   string
		tuples []Tuple
		wms    []int64
		cuts   []int
	}{
		// Random two-sided stream, cuts sweeping the whole run.
		{"mixed", joinCrashTuples(400), []int64{50, 120, 200, 320}, []int{1, 37, 100, 201, 399}},
		// Only the left side ever arrives: snapshots with an empty right
		// registry must restore and keep classifying correctly.
		{"empty-side", func() []Tuple {
			var ts int64
			out := make([]Tuple, 0, 120)
			for i := 0; i < 120; i++ {
				ts += 2
				out = append(out, sideTuple(fmt.Sprintf("k%d", i%5), Left, fmt.Sprintf("l%03d", i), ts))
			}
			return out
		}(), []int64{60, 140, 220}, []int{10, 60, 110}},
		// Watermark lands inside a bucket's span, so live buckets straddle
		// the expiry horizon at the cut.
		{"wm-straddling", func() []Tuple {
			var out []Tuple
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%3)
				out = append(out, sideTuple(key, Left, fmt.Sprintf("l%03d", i), int64(i*3)))
				out = append(out, sideTuple(key, Right, fmt.Sprintf("r%03d", i), int64(i*3+1)))
			}
			return out
		}(), []int64{31, 155, 317, 471}, []int{51, 151, 303}},
	}
	run := func(op *IntervalJoinOperator, tuples []Tuple, wms []int64, wi *int) {
		for _, tp := range tuples {
			if err := op.OnTuple(tp); err != nil {
				t.Fatal(err)
			}
			for *wi < len(wms) && wms[*wi] <= tp.TS {
				if err := op.OnWatermark(wms[*wi], 0); err != nil {
					t.Fatal(err)
				}
				*wi++
			}
		}
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			// Golden: uninterrupted run.
			var golden []string
			gb := mkBackend(filepath.Join(t.TempDir(), "golden"))
			gop, err := NewIntervalJoinOperator(spec, gb, func(tp Tuple) { golden = append(golden, string(tp.Value)) })
			if err != nil {
				t.Fatal(err)
			}
			gwi := 0
			run(gop, tc.tuples, tc.wms, &gwi)
			if err := gop.Finish(0); err != nil {
				t.Fatal(err)
			}
			gb.Destroy()
			sort.Strings(golden)

			for _, cut := range tc.cuts {
				base := t.TempDir()
				var got []string
				b1 := mkBackend(filepath.Join(base, "pre"))
				op1, err := NewIntervalJoinOperator(spec, b1, func(tp Tuple) { got = append(got, string(tp.Value)) })
				if err != nil {
					t.Fatal(err)
				}
				wi := 0
				run(op1, tc.tuples[:cut], tc.wms, &wi)
				// Checkpoint the cut: backend state + operator snapshot.
				cp, ok := statebackend.AsCheckpointer(b1)
				if !ok {
					t.Fatal("flowkv backend lost its checkpointer")
				}
				cpDir := filepath.Join(base, "cp")
				if err := cp.CheckpointMeta(cpDir, op1.snapshotState()); err != nil {
					t.Fatal(err)
				}
				b1.Destroy()
				// Restore into fresh instances and replay the suffix.
				b2 := mkBackend(filepath.Join(base, "post"))
				cp2, _ := statebackend.AsCheckpointer(b2)
				snap, err := cp2.RestoreMeta(cpDir)
				if err != nil {
					t.Fatal(err)
				}
				op2, err := NewIntervalJoinOperator(spec, b2, func(tp Tuple) { got = append(got, string(tp.Value)) })
				if err != nil {
					t.Fatal(err)
				}
				if err := op2.restoreState(snap); err != nil {
					t.Fatal(err)
				}
				if again := op2.snapshotState(); !bytes.Equal(snap, again) {
					t.Fatalf("cut %d: snapshot not stable across restore", cut)
				}
				run(op2, tc.tuples[cut:], tc.wms, &wi)
				if err := op2.Finish(0); err != nil {
					t.Fatal(err)
				}
				b2.Destroy()
				sort.Strings(got)
				if len(got) != len(golden) {
					t.Fatalf("cut %d: %d joins, want %d", cut, len(got), len(golden))
				}
				for i := range golden {
					if got[i] != golden[i] {
						t.Fatalf("cut %d: join %d = %q, want %q", cut, i, got[i], golden[i])
					}
				}
			}
		})
	}
}

// TestCommittedLayout covers the generation-directory scanner feeding the
// rescale path and flowkvctl's resumability report.
func TestCommittedLayout(t *testing.T) {
	dir := t.TempDir()
	gd := filepath.Join(dir, genDirName(3))
	for _, sub := range []string{"s01-w00", "s01-w01", "s01-w02", "s02-shared", "junk", "s03-w00"} {
		if err := os.MkdirAll(filepath.Join(gd, sub), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	layout, err := CommittedLayout(nil, dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cs := layout[1]; cs.Workers != 3 || cs.Shared {
		t.Errorf("stage 1 layout = %+v", cs)
	}
	if cs := layout[2]; !cs.Shared {
		t.Errorf("stage 2 layout = %+v", cs)
	}
	if cs := layout[3]; cs.Workers != 1 || cs.Shared {
		t.Errorf("stage 3 layout = %+v", cs)
	}
	if _, ok := layout[0]; ok {
		t.Error("phantom stage 0")
	}
	if _, err := CommittedLayout(nil, dir, 9); err == nil {
		t.Error("missing generation accepted")
	}
}
