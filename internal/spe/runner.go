package spe

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"flowkv/internal/clock"
	"flowkv/internal/core"
	"flowkv/internal/metrics"
	"flowkv/internal/statebackend"
	"flowkv/internal/window"
)

// Stage is one operator of a pipeline, executed by Parallelism workers.
// Exactly one of Window or Map is set.
type Stage struct {
	// Name labels the stage in reports.
	Name string
	// Parallelism is the worker count (physical operators); default 1.
	Parallelism int
	// Window describes a stateful window operator; NewBackend constructs
	// each worker's private state store instance.
	Window     *OperatorSpec
	NewBackend func(workerID int) (statebackend.Backend, error)
	// Join describes an interval-join operator (uses NewBackend too).
	Join *IntervalJoinSpec
	// ShareBackend makes every worker of the stage share one backend,
	// constructed by NewBackend(0), instead of one private backend per
	// worker — the arrangement that exercises a concurrent store. The
	// FlowKV backend is used as-is (core.Store is internally concurrent);
	// other kinds are wrapped with statebackend.Synchronized. Workers
	// still own disjoint key ranges (tuples are routed by key hash), so
	// per-key state never interleaves across workers. Holistic aggregates
	// over aligned windows run each worker behind a view that reads only
	// its own key range from the merged window and defers the wholesale
	// drop until every owner has fired (see shared.go).
	ShareBackend bool
	// Map is a stateless transform; it may emit zero or more tuples.
	Map func(t Tuple, emit func(Tuple))
}

// statefulOperator is what a stage worker drives: window operators and
// interval-join operators share the lifecycle.
type statefulOperator interface {
	OnTuple(Tuple) error
	OnWatermark(wm int64, wallNS int64) error
	Finish(wallNS int64) error
	Backend() statebackend.Backend
}

// Pipeline is a linear dataflow: source -> stages[0] -> ... -> sink.
// (The NEXMark queries used in the evaluation are linear chains of window
// operators; the paper's Figure 1 example likewise.)
type Pipeline struct {
	// Stages in dataflow order.
	Stages []Stage
	// ChannelDepth bounds inter-operator channels (backpressure).
	// Default 256 messages.
	ChannelDepth int
	// WatermarkEvery emits a source watermark after this many tuples.
	// Default 200.
	WatermarkEvery int
	// StatsEvery, when positive, delivers a StatsReport to OnStats after
	// every StatsEvery source tuples — the runner's periodic health and
	// error surface (store health, write/read error counters).
	StatsEvery int
	// OnStats receives the periodic reports. It is called synchronously
	// from the source-driving goroutine, so it must be fast.
	OnStats func(StatsReport)
}

// Source produces the input stream by calling emit for each tuple, in
// non-decreasing timestamp order (the NEXMark generator's property).
type Source func(emit func(Tuple))

// Halt identifies the failure that stopped a run early: which stage and
// worker hit it, which backend was involved, and the error itself —
// enough to aim recovery (or a bug report) at the right store instead of
// a bare boolean.
type Halt struct {
	// Stage is the name of the stage whose operator failed.
	Stage string
	// Worker is the worker index within the stage (-1 if the failure was
	// not tied to a single worker).
	Worker int
	// Backend is the failing backend's Name(); empty when the failure
	// did not involve a state backend.
	Backend string
	// Err is the error that latched the halt.
	Err error
}

// Error renders the halt for logs.
func (h *Halt) Error() string {
	if h == nil {
		return "<nil>"
	}
	return fmt.Sprintf("stage %s worker %d (backend %s): %v", h.Stage, h.Worker, h.Backend, h.Err)
}

// Unwrap exposes the latched error to errors.Is/As, so callers can key
// on typed causes (core.ErrFailed, ErrCheckpointTimeout) through the
// halt.
func (h *Halt) Unwrap() error {
	if h == nil {
		return nil
	}
	return h.Err
}

// MarshalJSON flattens the halt's error to a string so failed runs stay
// readable in JSON reports (error values marshal to "{}" otherwise).
func (h *Halt) MarshalJSON() ([]byte, error) {
	errStr := ""
	if h.Err != nil {
		errStr = h.Err.Error()
	}
	return json.Marshal(struct {
		Stage   string
		Worker  int
		Backend string
		Err     string
	}{h.Stage, h.Worker, h.Backend, errStr})
}

// BackendStatus is one backend's health snapshot inside a StatsReport.
type BackendStatus struct {
	// Stage and Worker locate the physical operator (-1 for a backend
	// shared by a whole stage).
	Stage  string
	Worker int
	// Backend is the backend's Name().
	Backend string
	// Health is the FlowKV failure-handling state; non-FlowKV backends
	// (which have no degraded mode) always report Healthy.
	Health core.Health
	// HealthErr is the error that moved the store out of Healthy ("" if
	// none).
	HealthErr string
	// WriteErrors, ReadErrors and Recoveries are the store's cumulative
	// failure counters.
	WriteErrors int64
	ReadErrors  int64
	Recoveries  int64
}

// StatsReport is the runner's periodic progress and health report.
type StatsReport struct {
	// TuplesIn is the number of source tuples fed so far.
	TuplesIn int64
	// Backends holds one status per stateful operator backend.
	Backends []BackendStatus
}

// RunResult aggregates a pipeline execution's measurements.
type RunResult struct {
	// TuplesIn is the number of source tuples processed.
	TuplesIn int64
	// Results is the number of tuples that reached the sink.
	Results int64
	// Elapsed is the wall-clock run time.
	Elapsed time.Duration
	// ThroughputTPS is TuplesIn / Elapsed in tuples per second.
	ThroughputTPS float64
	// Latency holds sink-side event-to-emission latencies.
	Latency *metrics.Histogram
	// Operators aggregates per-stage operator counters.
	Operators []OperatorStats
	// FlowKV aggregates FlowKV store stats when that backend ran.
	FlowKV FlowKVRunStats
	// Backends is the final per-backend health snapshot, taken after the
	// pipeline drained and before backends were released.
	Backends []BackendStatus
	// Halted reports that the run stopped early: a state backend entered
	// the Failed health state (or, in job mode, any operator error
	// occurred) and the remaining tuples were drained unprocessed rather
	// than written into a store that cannot honor acknowledgements. It
	// records which stage, worker and backend failed and with what error;
	// nil means the run completed normally.
	Halted *Halt
	// Err is the first worker error, if any.
	Err error
}

// FlowKVRunStats aggregates FlowKV-specific metrics across workers.
type FlowKVRunStats struct {
	// Hits and Misses are prefetch-buffer counters (Fig. 11b).
	Hits, Misses int64
	// Evictions counts wrong-ETT evictions.
	Evictions int64
	// Compactions counts store compactions.
	Compactions int64
}

// HitRatio returns the aggregate prefetch hit ratio.
func (f FlowKVRunStats) HitRatio() float64 {
	if f.Hits+f.Misses == 0 {
		return 0
	}
	return float64(f.Hits) / float64(f.Hits+f.Misses)
}

// barrier aligns every worker of every stage at one point of the stream
// (Chandy-Lamport style, specialized to a linear dataflow with a paused
// source). The coordinator injects it into stage 0; each stage forwards
// it downstream only after all its workers have reached it, so a barrier
// observed by stage k+1 is provably behind every tuple stage k emitted
// before pausing. When the last stage's workers arrive, aligned closes:
// every channel is drained of pre-barrier traffic and every worker is
// parked on resume, giving the coordinator an exclusive, globally
// consistent cut of operator and store state.
type barrier struct {
	aligned chan struct{} // closed when every worker has arrived
	resume  chan struct{} // closed by the coordinator after the cut
}

func newBarrier() *barrier {
	return &barrier{aligned: make(chan struct{}), resume: make(chan struct{})}
}

// stageRT is the runtime of one stage: its workers' input channels,
// their operators, and the per-stage barrier arrival counter.
type stageRT struct {
	stage  Stage
	par    int
	in     []chan Message
	ops    []statefulOperator
	shared statebackend.Backend

	// route maps a key's hash bucket (routeKey(key, par)) to the worker
	// that owns it. nil means identity — bucket w is owned by worker w.
	// Live migration rewrites single entries while every worker is parked
	// at an aligned barrier; the table is persisted in the JOB record so
	// ownership survives restarts (see migrate.go).
	route []int

	// Holistic aligned windows over a shared backend: per-worker key-range
	// views and the deferred whole-window drop tracker (see shared.go).
	// views is nil for every other stage shape; drops is additionally nil
	// when the shared backend cannot serve partitioned window reads (the
	// operators then fall back to consuming per-key reads, which need no
	// deferred drop).
	views []*workerView
	drops *sharedDrops

	barMu sync.Mutex
	barN  int

	// beats counts messages each worker has processed — the progress
	// heartbeat the watchdog reports when a barrier fails to align.
	// atBar marks workers currently parked at a barrier, so the watchdog
	// can name the worker that never arrived (the one wedged in an
	// operator call).
	beats []atomic.Int64
	atBar []atomic.Bool
}

// runtime is a constructed pipeline: channels wired, backends opened,
// operators built. Run and jobs share it; jobs additionally halt on any
// operator error (haltAll) so no state divergence can be committed.
type runtime struct {
	p       *Pipeline
	depth   int
	wmEvery int
	res     *RunResult
	rts     []*stageRT
	wgs     []*sync.WaitGroup
	haltAll bool

	errMu  sync.Mutex
	halted atomic.Bool

	// abandoned marks a runtime the progress watchdog gave up on: some
	// goroutine (a wedged worker, a hung checkpoint) may still hold its
	// backends, so teardown must not close or destroy them, and collect
	// must not touch operator state. The leaked goroutines die when the
	// hung I/O finally returns (into a poisoned, abandoned descriptor).
	abandoned atomic.Bool

	sink      func(Tuple)
	sinkMu    sync.Mutex
	sinkCount int64

	// Source-side cadence state; jobs restore these from checkpoint
	// metadata so replayed watermarks land between the same tuples.
	tuplesIn int64
	maxTS    int64
	sinceWM  int

	start time.Time
}

// newRuntime builds channels, backends and operators but starts no
// goroutines; start launches the workers. Splitting construction from
// start lets a job validate backends (and restore checkpoints into them)
// while teardown is still a simple destroy loop.
func newRuntime(p *Pipeline, sink func(Tuple), haltAll bool) (*runtime, error) {
	if len(p.Stages) == 0 {
		return nil, fmt.Errorf("spe: pipeline has no stages")
	}
	r := &runtime{
		p:       p,
		depth:   p.ChannelDepth,
		wmEvery: p.WatermarkEvery,
		res:     &RunResult{Latency: metrics.NewHistogram()},
		haltAll: haltAll,
		sink:    sink,
		maxTS:   -1 << 62,
	}
	if r.depth <= 0 {
		r.depth = 256
	}
	if r.wmEvery <= 0 {
		r.wmEvery = 200
	}
	r.rts = make([]*stageRT, len(p.Stages))
	for i := range p.Stages {
		st := p.Stages[i]
		par := st.Parallelism
		if par <= 0 {
			par = 1
		}
		rt := &stageRT{stage: st, par: par, in: make([]chan Message, par),
			beats: make([]atomic.Int64, par), atBar: make([]atomic.Bool, par)}
		for w := 0; w < par; w++ {
			rt.in[w] = make(chan Message, r.depth)
		}
		r.rts[i] = rt
	}
	if err := r.buildOperators(); err != nil {
		r.destroyBackends()
		return nil, err
	}
	return r, nil
}

func (r *runtime) buildOperators() error {
	for i := len(r.rts) - 1; i >= 0; i-- {
		rt := r.rts[i]
		emitTuple, _ := r.sender(i)
		rt.ops = make([]statefulOperator, rt.par)
		if rt.stage.ShareBackend && (rt.stage.Window != nil || rt.stage.Join != nil) {
			b, err := rt.stage.NewBackend(0)
			if err != nil {
				return fmt.Errorf("spe: stage %s shared backend: %w", rt.stage.Name, err)
			}
			rt.shared = statebackend.Synchronized(b)
			if rt.stage.Window != nil && rt.stage.Window.IsHolistic() &&
				rt.stage.Window.Assigner.Kind().Aligned() {
				// Holistic aligned triggers bulk-read whole windows; behind a
				// shared backend each worker must read only its own key range
				// and the merged window is dropped once every owner fired.
				part, _ := statebackend.AsPartitionedWindowReader(rt.shared)
				if part != nil {
					shared := rt.shared
					rt.drops = newSharedDrops(rt.par, func(w window.Window) error {
						return shared.DropAppended(nil, w)
					})
				}
				rt.views = make([]*workerView, rt.par)
				for w := 0; w < rt.par; w++ {
					rt.views[w] = newWorkerView(rt.shared, part, rt.drops, w, rt.par)
				}
			}
		}
		for w := 0; w < rt.par; w++ {
			if rt.stage.Window == nil && rt.stage.Join == nil {
				continue
			}
			var err error
			backend := rt.shared
			if rt.views != nil {
				backend = rt.views[w]
			}
			if backend == nil {
				backend, err = rt.stage.NewBackend(w)
				if err != nil {
					return fmt.Errorf("spe: stage %s worker %d: %w", rt.stage.Name, w, err)
				}
			}
			var op statefulOperator
			if rt.stage.Window != nil {
				op, err = NewWindowOperator(*rt.stage.Window, backend, emitTuple)
			} else {
				op, err = NewIntervalJoinOperator(*rt.stage.Join, backend, emitTuple)
			}
			if err != nil {
				backend.Destroy()
				return err
			}
			rt.ops[w] = op
		}
	}
	return nil
}

// reseedSharedWindows re-registers restored state with the shared-stage
// drop trackers after a job resume: each worker's restored watermark and
// the aligned windows still owing triggers, exactly what live ingestion
// would have registered. Called before any worker goroutine starts.
func (r *runtime) reseedSharedWindows() {
	for _, rt := range r.rts {
		if rt.views == nil || rt.drops == nil {
			continue
		}
		for w, op := range rt.ops {
			wo, ok := op.(*WindowOperator)
			if !ok {
				continue
			}
			rt.drops.reseedWM(w, wo.wm)
			for win := range wo.aligned {
				rt.views[w].register(win)
			}
		}
	}
}

// destroyBackends releases every backend built so far (construction
// failure path — no goroutines are running).
func (r *runtime) destroyBackends() {
	for _, rt := range r.rts {
		if rt == nil {
			continue
		}
		for _, op := range rt.ops {
			if op != nil && rt.shared == nil {
				op.Backend().Destroy()
			}
		}
		if rt.shared != nil {
			rt.shared.Destroy()
		}
	}
}

func (r *runtime) fail(err error) {
	r.errMu.Lock()
	if r.res.Err == nil {
		r.res.Err = err
	}
	r.errMu.Unlock()
}

// opFail records a worker error and decides whether to halt the run. A
// backend reaching the Failed health state always halts: draining
// without processing beats hammering a dead store. Job mode (haltAll)
// halts on any operator error, because a job must not commit a
// checkpoint past a tuple whose state update was lost — halting and
// resuming from the previous checkpoint replays it instead.
func (r *runtime) opFail(stage string, worker int, op statefulOperator, err error) {
	r.fail(err)
	fatal := errors.Is(err, core.ErrFailed)
	if !fatal && op != nil {
		if h, ok := statebackend.FlowKVHealth(op.Backend()); ok && h == core.Failed {
			fatal = true
		}
	}
	if !fatal && !r.haltAll {
		return
	}
	r.errMu.Lock()
	if r.res.Halted == nil {
		name := ""
		if op != nil {
			name = op.Backend().Name()
		}
		r.res.Halted = &Halt{Stage: stage, Worker: worker, Backend: name, Err: err}
	}
	r.errMu.Unlock()
	r.halted.Store(true)
}

func (r *runtime) deliverSink(t Tuple) {
	r.sinkMu.Lock()
	r.sinkCount++
	if t.WallNS > 0 {
		r.res.Latency.Observe(time.Duration(time.Now().UnixNano() - t.WallNS))
	}
	if r.sink != nil {
		r.sink(t)
	}
	r.sinkMu.Unlock()
}

// sender routes tuples by key hash and broadcasts watermarks to the next
// stage, or delivers to the sink after the last stage.
func (r *runtime) sender(stageIdx int) (func(Tuple), func(int64, int64)) {
	if stageIdx == len(r.rts)-1 {
		return r.deliverSink, func(int64, int64) {}
	}
	next := r.rts[stageIdx+1]
	emitTuple := func(t Tuple) {
		next.in[next.workerFor(t.Key)] <- Message{Tuple: t, WallNS: t.WallNS}
	}
	emitWM := func(wm int64, wallNS int64) {
		for _, ch := range next.in {
			ch <- Message{IsWatermark: true, Watermark: wm, WallNS: wallNS}
		}
	}
	return emitTuple, emitWM
}

// arriveBarrier is the worker side of barrier alignment: count the
// arrival, and if this worker completes the stage, forward the barrier
// downstream (all stage emissions are already enqueued, so FIFO order
// keeps the barrier behind them) or declare global alignment at the last
// stage. Then park until the coordinator finishes its cut.
func (r *runtime) arriveBarrier(stageIdx, w int, b *barrier) {
	rt := r.rts[stageIdx]
	rt.atBar[w].Store(true)
	defer rt.atBar[w].Store(false)
	rt.barMu.Lock()
	rt.barN++
	last := rt.barN == rt.par
	if last {
		rt.barN = 0
	}
	rt.barMu.Unlock()
	if last {
		if stageIdx == len(r.rts)-1 {
			close(b.aligned)
		} else {
			for _, ch := range r.rts[stageIdx+1].in {
				ch <- Message{barrier: b}
			}
		}
	}
	<-b.resume
}

// injectBarrier broadcasts a fresh barrier into stage 0 and blocks until
// every worker of every stage is parked on it. The caller then owns a
// consistent cut; release it with close(b.resume).
//
// With a positive deadline it is the progress watchdog: alignment (and
// the injection sends themselves, which block when a wedged worker has
// let its channel fill) must complete within the deadline, or the run
// halts with a typed *Halt naming the worker that never arrived,
// wrapping ErrProgressStalled. On that path the runtime is marked
// abandoned — the wedged worker may wake later and still owns its
// backend — and a release goroutine unparks the aligned workers if the
// barrier ever completes.
func (r *runtime) injectBarrier(clk clock.Clock, deadline time.Duration) (*barrier, error) {
	b := newBarrier()
	if deadline <= 0 {
		for _, ch := range r.rts[0].in {
			ch <- Message{barrier: b}
		}
		<-b.aligned
		return b, nil
	}
	expired := clk.After(deadline)
	for _, ch := range r.rts[0].in {
		select {
		case ch <- Message{barrier: b}:
		case <-expired:
			return nil, r.progressStalled(deadline, b)
		}
	}
	select {
	case <-b.aligned:
		return b, nil
	case <-expired:
		// Alignment may have raced the timer; a completed barrier wins.
		select {
		case <-b.aligned:
			return b, nil
		default:
		}
		return nil, r.progressStalled(deadline, b)
	}
}

// progressStalled latches the watchdog halt: the runtime is abandoned,
// the stuck worker named, and a release goroutine armed so workers
// parked at the half-aligned barrier unpark if it ever completes.
func (r *runtime) progressStalled(deadline time.Duration, b *barrier) error {
	h := r.stuckWorkerHalt(deadline)
	r.errMu.Lock()
	if r.res.Halted == nil {
		r.res.Halted = h
	}
	r.errMu.Unlock()
	r.halted.Store(true)
	r.abandoned.Store(true)
	r.fail(h)
	go func() {
		<-b.aligned
		close(b.resume)
	}()
	return h
}

// stuckWorkerHalt names the first worker not parked at the barrier —
// the one wedged inside an operator call — with its heartbeat count for
// the report. The backend name is what lets a job manager treat the
// stall as a slot failure.
func (r *runtime) stuckWorkerHalt(deadline time.Duration) *Halt {
	for _, rt := range r.rts {
		for w := 0; w < rt.par; w++ {
			if rt.atBar[w].Load() {
				continue
			}
			name := ""
			if op := rt.ops[w]; op != nil {
				name = op.Backend().Name()
			}
			return &Halt{Stage: rt.stage.Name, Worker: w, Backend: name,
				Err: fmt.Errorf("%w: stage %s worker %d never reached the barrier (%d messages processed) within %v",
					ErrProgressStalled, rt.stage.Name, w, rt.beats[w].Load(), deadline)}
		}
	}
	return &Halt{Worker: -1, Err: fmt.Errorf("%w after %v", ErrProgressStalled, deadline)}
}

// abandonDrain tears down an abandoned runtime as far as it safely can:
// stages are closed front to back, each given grace to exit; the first
// stage that fails to drain stops the sweep, leaving its goroutines —
// and every channel downstream of them — alive. Closing further
// channels would turn the wedged worker's eventual wake-up into a send
// on a closed channel; leaking them keeps its recovery path harmless.
func (r *runtime) abandonDrain(clk clock.Clock, grace time.Duration) {
	if grace <= 0 {
		grace = time.Second
	}
	for i, rt := range r.rts {
		for _, ch := range rt.in {
			close(ch)
		}
		exited := make(chan struct{})
		go func(wg *sync.WaitGroup) {
			wg.Wait()
			close(exited)
		}(r.wgs[i])
		select {
		case <-exited:
		case <-clk.After(grace):
			return
		}
	}
}

// startWorkers launches the worker goroutines and starts the run clock.
func (r *runtime) startWorkers() {
	for i := len(r.rts) - 1; i >= 0; i-- {
		rt := r.rts[i]
		_, emitWM := r.sender(i)
		var wg sync.WaitGroup
		// Per-stage watermark forwarding: forward min across this stage's
		// workers so downstream sees one consistent, already-combined
		// stage watermark stream.
		fw := newWatermarkForwarder(rt.par, emitWM)
		for w := 0; w < rt.par; w++ {
			wg.Add(1)
			go r.worker(i, w, rt, rt.ops[w], fw, &wg)
		}
		r.wgs = append([]*sync.WaitGroup{&wg}, r.wgs...)
	}
	r.start = time.Now()
}

func (r *runtime) worker(stageIdx, w int, rt *stageRT, op statefulOperator, fw *watermarkForwarder, wg *sync.WaitGroup) {
	defer wg.Done()
	emitTuple, _ := r.sender(stageIdx)
	var lastWM int64 = -1 << 62
	for msg := range rt.in[w] {
		rt.beats[w].Add(1)
		if msg.barrier != nil {
			// Barriers align even while halted, so a coordinator waiting
			// on one is never deadlocked by a concurrent failure.
			r.arriveBarrier(stageIdx, w, msg.barrier)
			continue
		}
		if r.halted.Load() {
			continue // drain unprocessed; upstream never blocks
		}
		if msg.IsWatermark {
			// The upstream forwarder already min-combined across its
			// workers; just reject regressions from emission races.
			if msg.Watermark <= lastWM {
				continue
			}
			wm := msg.Watermark
			lastWM = wm
			if op != nil {
				if err := op.OnWatermark(wm, msg.WallNS); err != nil {
					r.opFail(rt.stage.Name, w, op, err)
				} else if rt.drops != nil {
					// Advance the shared-stage drop tracker only after this
					// worker's triggers for the watermark actually fired.
					if err := rt.drops.noteWM(w, wm); err != nil {
						r.opFail(rt.stage.Name, w, op, err)
					}
				}
			}
			fw.observe(w, wm, msg.WallNS)
			continue
		}
		if op != nil {
			if err := op.OnTuple(msg.Tuple); err != nil {
				r.opFail(rt.stage.Name, w, op, err)
			}
		} else {
			rt.stage.Map(msg.Tuple, emitTuple)
		}
	}
	if op != nil && !r.halted.Load() {
		if err := op.Finish(time.Now().UnixNano()); err != nil {
			r.opFail(rt.stage.Name, w, op, err)
		} else if rt.drops != nil {
			if err := rt.drops.noteWM(w, window.MaxTime); err != nil {
				r.opFail(rt.stage.Name, w, op, err)
			}
		}
	}
}

// feed routes one source tuple into stage 0, emitting the periodic
// watermark and stats report on cadence.
func (r *runtime) feed(t Tuple) {
	if r.halted.Load() {
		return // backend failed: stop feeding the pipeline
	}
	if t.WallNS == 0 {
		t.WallNS = time.Now().UnixNano()
	}
	if t.TS > r.maxTS {
		r.maxTS = t.TS
	}
	first := r.rts[0]
	first.in[first.workerFor(t.Key)] <- Message{Tuple: t, WallNS: t.WallNS}
	r.tuplesIn++
	r.sinceWM++
	if r.sinceWM >= r.wmEvery {
		r.sinceWM = 0
		wm := r.maxTS // in-order source: everything up to maxTS is final
		wall := time.Now().UnixNano()
		for _, ch := range first.in {
			ch <- Message{IsWatermark: true, Watermark: wm, WallNS: wall}
		}
	}
	if r.p.StatsEvery > 0 && r.p.OnStats != nil && r.tuplesIn%int64(r.p.StatsEvery) == 0 {
		r.p.OnStats(StatsReport{TuplesIn: r.tuplesIn, Backends: r.backendStatuses()})
	}
}

// backendStatuses snapshots every stateful backend's health. core.Store
// counters are safe to read concurrently with the workers.
func (r *runtime) backendStatuses() []BackendStatus {
	var out []BackendStatus
	for _, rt := range r.rts {
		statusOf := func(worker int, b statebackend.Backend) BackendStatus {
			bs := BackendStatus{Stage: rt.stage.Name, Worker: worker, Backend: b.Name()}
			if st, ok := statebackend.FlowKVStats(b); ok {
				bs.Health = st.Health
				bs.HealthErr = st.HealthErr
				bs.WriteErrors = st.WriteErrors
				bs.ReadErrors = st.ReadErrors
				bs.Recoveries = st.Recoveries
			}
			return bs
		}
		if rt.shared != nil {
			out = append(out, statusOf(-1, rt.shared))
			continue
		}
		for w, op := range rt.ops {
			if op == nil {
				continue
			}
			out = append(out, statusOf(w, op.Backend()))
		}
	}
	return out
}

// drain closes the stages front to back, waiting for each to empty.
func (r *runtime) drain() {
	for i, rt := range r.rts {
		for _, ch := range rt.in {
			close(ch)
		}
		r.wgs[i].Wait()
	}
}

// collect finalizes the result: throughput, operator counters, the final
// backend health snapshot, and FlowKV aggregates. destroy selects
// whether backends are destroyed (benchmark runs discard state) or
// closed (jobs leave durable state for the next resume).
func (r *runtime) collect(destroy bool) *RunResult {
	res := r.res
	res.Elapsed = time.Since(r.start)
	res.TuplesIn = r.tuplesIn
	r.sinkMu.Lock()
	res.Results = r.sinkCount
	r.sinkMu.Unlock()
	if res.Elapsed > 0 {
		res.ThroughputTPS = float64(r.tuplesIn) / res.Elapsed.Seconds()
	}
	if r.abandoned.Load() {
		// A wedged goroutine may still own operators and backends:
		// touching either (stats, Close, Destroy) would race its eventual
		// wake-up. The halt in res carries everything the caller needs.
		return res
	}
	res.Backends = r.backendStatuses()

	// A shared backend is counted and released once per stage, not once
	// per worker.
	release := func(b statebackend.Backend) {
		var err error
		if destroy {
			err = b.Destroy()
		} else {
			err = b.Close()
		}
		if err != nil {
			r.fail(err)
		}
	}
	for _, rt := range r.rts {
		var agg OperatorStats
		for _, op := range rt.ops {
			if op == nil {
				continue
			}
			switch typed := op.(type) {
			case *WindowOperator:
				st := typed.Stats()
				agg.ResultsEmitted += st.ResultsEmitted
				agg.LateDropped += st.LateDropped
				agg.TriggersFired += st.TriggersFired
			case *IntervalJoinOperator:
				st := typed.Stats()
				agg.ResultsEmitted += st.Results
				agg.LateDropped += st.LateDropped
			}
			if rt.shared != nil {
				continue
			}
			if fs, ok := statebackend.FlowKVStats(op.Backend()); ok {
				res.FlowKV.Hits += fs.Hits
				res.FlowKV.Misses += fs.Misses
				res.FlowKV.Evictions += fs.Evictions
				res.FlowKV.Compactions += fs.Compactions
			}
			release(op.Backend())
		}
		if rt.shared != nil {
			if fs, ok := statebackend.FlowKVStats(rt.shared); ok {
				res.FlowKV.Hits += fs.Hits
				res.FlowKV.Misses += fs.Misses
				res.FlowKV.Evictions += fs.Evictions
				res.FlowKV.Compactions += fs.Compactions
			}
			release(rt.shared)
		}
		res.Operators = append(res.Operators, agg)
	}
	return res
}

// Run executes the pipeline to completion over the source and returns
// the measurements. Results reaching the end of the last stage are
// delivered to sink (which may be nil).
func Run(p *Pipeline, source Source, sink func(Tuple)) (*RunResult, error) {
	r, err := newRuntime(p, sink, false)
	if err != nil {
		return nil, err
	}
	r.startWorkers()
	source(r.feed)
	r.drain()
	res := r.collect(true)
	return res, res.Err
}

func routeKey(key []byte, par int) int {
	if par == 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write(key)
	return int(h.Sum32() % uint32(par))
}

// workerFor resolves a key to its owning worker: hash bucket first, then
// the stage's routing table (identity when nil). Join stages route by
// the tuple key, which is the user key — side tagging happens inside the
// operator, below this dispatch.
func (rt *stageRT) workerFor(key []byte) int {
	w := routeKey(key, rt.par)
	if rt.route != nil {
		return rt.route[w]
	}
	return w
}

// watermarkForwarder forwards the minimum watermark across a stage's
// workers downstream, so the next stage observes one consistent stage
// watermark per round.
type watermarkForwarder struct {
	mu   sync.Mutex
	wms  []int64
	last int64
	emit func(int64, int64)
}

func newWatermarkForwarder(workers int, emit func(int64, int64)) *watermarkForwarder {
	wms := make([]int64, workers)
	for i := range wms {
		wms[i] = -1 << 62
	}
	return &watermarkForwarder{wms: wms, last: -1 << 62, emit: emit}
}

func (f *watermarkForwarder) observe(worker int, wm int64, wallNS int64) {
	f.mu.Lock()
	if wm > f.wms[worker] {
		f.wms[worker] = wm
	}
	min := f.wms[0]
	for _, v := range f.wms[1:] {
		if v < min {
			min = v
		}
	}
	advanced := min > f.last
	if advanced {
		f.last = min
	}
	f.mu.Unlock()
	if advanced {
		f.emit(min, wallNS)
	}
}
