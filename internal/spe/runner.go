package spe

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"flowkv/internal/core"
	"flowkv/internal/metrics"
	"flowkv/internal/statebackend"
)

// Stage is one operator of a pipeline, executed by Parallelism workers.
// Exactly one of Window or Map is set.
type Stage struct {
	// Name labels the stage in reports.
	Name string
	// Parallelism is the worker count (physical operators); default 1.
	Parallelism int
	// Window describes a stateful window operator; NewBackend constructs
	// each worker's private state store instance.
	Window     *OperatorSpec
	NewBackend func(workerID int) (statebackend.Backend, error)
	// Join describes an interval-join operator (uses NewBackend too).
	Join *IntervalJoinSpec
	// ShareBackend makes every worker of the stage share one backend,
	// constructed by NewBackend(0), instead of one private backend per
	// worker — the arrangement that exercises a concurrent store. The
	// FlowKV backend is used as-is (core.Store is internally concurrent);
	// other kinds are wrapped with statebackend.Synchronized. Workers
	// still own disjoint key ranges (tuples are routed by key hash), so
	// per-key state never interleaves across workers. Holistic aggregates
	// over aligned windows are rejected in this mode: their trigger path
	// bulk-reads a whole window, which would steal the keys of workers
	// whose watermark has not yet passed the window end.
	ShareBackend bool
	// Map is a stateless transform; it may emit zero or more tuples.
	Map func(t Tuple, emit func(Tuple))
}

// statefulOperator is what a stage worker drives: window operators and
// interval-join operators share the lifecycle.
type statefulOperator interface {
	OnTuple(Tuple) error
	OnWatermark(wm int64, wallNS int64) error
	Finish(wallNS int64) error
	Backend() statebackend.Backend
}

// Pipeline is a linear dataflow: source -> stages[0] -> ... -> sink.
// (The NEXMark queries used in the evaluation are linear chains of window
// operators; the paper's Figure 1 example likewise.)
type Pipeline struct {
	// Stages in dataflow order.
	Stages []Stage
	// ChannelDepth bounds inter-operator channels (backpressure).
	// Default 256 messages.
	ChannelDepth int
	// WatermarkEvery emits a source watermark after this many tuples.
	// Default 200.
	WatermarkEvery int
}

// Source produces the input stream by calling emit for each tuple, in
// non-decreasing timestamp order (the NEXMark generator's property).
type Source func(emit func(Tuple))

// RunResult aggregates a pipeline execution's measurements.
type RunResult struct {
	// TuplesIn is the number of source tuples processed.
	TuplesIn int64
	// Results is the number of tuples that reached the sink.
	Results int64
	// Elapsed is the wall-clock run time.
	Elapsed time.Duration
	// ThroughputTPS is TuplesIn / Elapsed in tuples per second.
	ThroughputTPS float64
	// Latency holds sink-side event-to-emission latencies.
	Latency *metrics.Histogram
	// Operators aggregates per-stage operator counters.
	Operators []OperatorStats
	// FlowKV aggregates FlowKV store stats when that backend ran.
	FlowKV FlowKVRunStats
	// Halted reports that the run stopped early because a state backend
	// entered the Failed health state: remaining tuples were drained
	// unprocessed rather than written into a store that cannot honor
	// acknowledgements. Err carries the triggering error.
	Halted bool
	// Err is the first worker error, if any.
	Err error
}

// FlowKVRunStats aggregates FlowKV-specific metrics across workers.
type FlowKVRunStats struct {
	// Hits and Misses are prefetch-buffer counters (Fig. 11b).
	Hits, Misses int64
	// Evictions counts wrong-ETT evictions.
	Evictions int64
	// Compactions counts store compactions.
	Compactions int64
}

// HitRatio returns the aggregate prefetch hit ratio.
func (f FlowKVRunStats) HitRatio() float64 {
	if f.Hits+f.Misses == 0 {
		return 0
	}
	return float64(f.Hits) / float64(f.Hits+f.Misses)
}

// Run executes the pipeline to completion over the source and returns
// the measurements. Results reaching the end of the last stage are
// delivered to sink (which may be nil).
func Run(p *Pipeline, source Source, sink func(Tuple)) (*RunResult, error) {
	if len(p.Stages) == 0 {
		return nil, fmt.Errorf("spe: pipeline has no stages")
	}
	depth := p.ChannelDepth
	if depth <= 0 {
		depth = 256
	}
	wmEvery := p.WatermarkEvery
	if wmEvery <= 0 {
		wmEvery = 200
	}

	res := &RunResult{Latency: metrics.NewHistogram()}
	var errMu sync.Mutex
	fail := func(err error) {
		errMu.Lock()
		if res.Err == nil {
			res.Err = err
		}
		errMu.Unlock()
	}
	// halted latches when a backend reaches the Failed health state; the
	// pipeline then drains without processing so every worker exits
	// cleanly (no channel stays blocked) instead of hammering a dead
	// store with further operations.
	var halted atomic.Bool
	opFail := func(op statefulOperator, err error) {
		fail(err)
		if errors.Is(err, core.ErrFailed) {
			halted.Store(true)
			return
		}
		if op != nil {
			if h, ok := statebackend.FlowKVHealth(op.Backend()); ok && h == core.Failed {
				halted.Store(true)
			}
		}
	}

	// Build channels: one input channel per worker per stage.
	type stageRT struct {
		stage  Stage
		par    int
		in     []chan Message
		ops    []statefulOperator
		shared statebackend.Backend // non-nil in ShareBackend mode
	}
	rts := make([]*stageRT, len(p.Stages))
	for i := range p.Stages {
		st := p.Stages[i]
		par := st.Parallelism
		if par <= 0 {
			par = 1
		}
		rt := &stageRT{stage: st, par: par, in: make([]chan Message, par)}
		for w := 0; w < par; w++ {
			rt.in[w] = make(chan Message, depth)
		}
		rts[i] = rt
	}

	var sinkMu sync.Mutex
	var sinkCount int64
	deliverSink := func(t Tuple) {
		sinkMu.Lock()
		sinkCount++
		if t.WallNS > 0 {
			res.Latency.Observe(time.Duration(time.Now().UnixNano() - t.WallNS))
		}
		if sink != nil {
			sink(t)
		}
		sinkMu.Unlock()
	}

	// sender routes tuples by key hash and broadcasts watermarks to the
	// next stage, or delivers to the sink after the last stage.
	sender := func(stageIdx int) (func(Tuple), func(int64, int64)) {
		if stageIdx == len(rts)-1 {
			return deliverSink, func(int64, int64) {}
		}
		next := rts[stageIdx+1]
		emitTuple := func(t Tuple) {
			next.in[routeKey(t.Key, next.par)] <- Message{Tuple: t, WallNS: t.WallNS}
		}
		emitWM := func(wm int64, wallNS int64) {
			for _, ch := range next.in {
				ch <- Message{IsWatermark: true, Watermark: wm, WallNS: wallNS}
			}
		}
		return emitTuple, emitWM
	}

	var wgs []*sync.WaitGroup
	for i := len(rts) - 1; i >= 0; i-- {
		rt := rts[i]
		emitTuple, emitWM := sender(i)
		var wg sync.WaitGroup
		// Per-stage watermark forwarding: forward min across this stage's
		// workers so downstream sees one consistent, already-combined
		// stage watermark stream.
		fw := newWatermarkForwarder(rt.par, emitWM)
		rt.ops = make([]statefulOperator, rt.par)
		if rt.stage.ShareBackend && (rt.stage.Window != nil || rt.stage.Join != nil) {
			if rt.stage.Window != nil && rt.stage.Window.IsHolistic() &&
				rt.stage.Window.Assigner.Kind().Aligned() {
				return nil, fmt.Errorf("spe: stage %s: ShareBackend does not support holistic aggregates over aligned windows (bulk window reads cross worker key ranges)", rt.stage.Name)
			}
			b, err := rt.stage.NewBackend(0)
			if err != nil {
				return nil, fmt.Errorf("spe: stage %s shared backend: %w", rt.stage.Name, err)
			}
			rt.shared = statebackend.Synchronized(b)
		}
		for w := 0; w < rt.par; w++ {
			var op statefulOperator
			if rt.stage.Window != nil || rt.stage.Join != nil {
				var err error
				backend := rt.shared
				if backend == nil {
					backend, err = rt.stage.NewBackend(w)
					if err != nil {
						return nil, fmt.Errorf("spe: stage %s worker %d: %w", rt.stage.Name, w, err)
					}
				}
				if rt.stage.Window != nil {
					op, err = NewWindowOperator(*rt.stage.Window, backend, emitTuple)
				} else {
					op, err = NewIntervalJoinOperator(*rt.stage.Join, backend, emitTuple)
				}
				if err != nil {
					backend.Destroy()
					return nil, err
				}
				rt.ops[w] = op
			}
			wg.Add(1)
			go func(w int, op statefulOperator) {
				defer wg.Done()
				var lastWM int64 = -1 << 62
				for msg := range rt.in[w] {
					if halted.Load() {
						continue // drain unprocessed; upstream never blocks
					}
					if msg.IsWatermark {
						// The upstream forwarder already min-combined
						// across its workers; just reject regressions
						// from emission races.
						if msg.Watermark <= lastWM {
							continue
						}
						wm := msg.Watermark
						lastWM = wm
						if op != nil {
							if err := op.OnWatermark(wm, msg.WallNS); err != nil {
								opFail(op, err)
							}
						}
						fw.observe(w, wm, msg.WallNS)
						continue
					}
					if op != nil {
						if err := op.OnTuple(msg.Tuple); err != nil {
							opFail(op, err)
						}
					} else {
						rt.stage.Map(msg.Tuple, emitTuple)
					}
				}
				if op != nil && !halted.Load() {
					if err := op.Finish(time.Now().UnixNano()); err != nil {
						opFail(op, err)
					}
				}
			}(w, op)
		}
		wgs = append([]*sync.WaitGroup{&wg}, wgs...)
	}

	// Drive the source into stage 0.
	start := time.Now()
	first := rts[0]
	var tuplesIn int64
	var maxTS int64 = -1 << 62
	sinceWM := 0
	source(func(t Tuple) {
		if halted.Load() {
			return // backend failed: stop feeding the pipeline
		}
		if t.WallNS == 0 {
			t.WallNS = time.Now().UnixNano()
		}
		if t.TS > maxTS {
			maxTS = t.TS
		}
		first.in[routeKey(t.Key, first.par)] <- Message{Tuple: t, WallNS: t.WallNS}
		tuplesIn++
		sinceWM++
		if sinceWM >= wmEvery {
			sinceWM = 0
			wm := maxTS // in-order source: everything up to maxTS is final
			wall := time.Now().UnixNano()
			for _, ch := range first.in {
				ch <- Message{IsWatermark: true, Watermark: wm, WallNS: wall}
			}
		}
	})

	// Close stages front to back, waiting for each to drain.
	for i, rt := range rts {
		for _, ch := range rt.in {
			close(ch)
		}
		wgs[i].Wait()
	}
	res.Elapsed = time.Since(start)
	res.TuplesIn = tuplesIn
	res.Halted = halted.Load()
	res.Results = sinkCount
	if res.Elapsed > 0 {
		res.ThroughputTPS = float64(tuplesIn) / res.Elapsed.Seconds()
	}

	// Collect operator stats and close backends. A shared backend is
	// counted and destroyed once per stage, not once per worker.
	for _, rt := range rts {
		var agg OperatorStats
		for _, op := range rt.ops {
			if op == nil {
				continue
			}
			switch typed := op.(type) {
			case *WindowOperator:
				st := typed.Stats()
				agg.ResultsEmitted += st.ResultsEmitted
				agg.LateDropped += st.LateDropped
				agg.TriggersFired += st.TriggersFired
			case *IntervalJoinOperator:
				st := typed.Stats()
				agg.ResultsEmitted += st.Results
				agg.LateDropped += st.LateDropped
			}
			if rt.shared != nil {
				continue
			}
			if fs, ok := statebackend.FlowKVStats(op.Backend()); ok {
				res.FlowKV.Hits += fs.Hits
				res.FlowKV.Misses += fs.Misses
				res.FlowKV.Evictions += fs.Evictions
				res.FlowKV.Compactions += fs.Compactions
			}
			if err := op.Backend().Destroy(); err != nil {
				fail(err)
			}
		}
		if rt.shared != nil {
			if fs, ok := statebackend.FlowKVStats(rt.shared); ok {
				res.FlowKV.Hits += fs.Hits
				res.FlowKV.Misses += fs.Misses
				res.FlowKV.Evictions += fs.Evictions
				res.FlowKV.Compactions += fs.Compactions
			}
			if err := rt.shared.Destroy(); err != nil {
				fail(err)
			}
		}
		res.Operators = append(res.Operators, agg)
	}
	return res, res.Err
}

func routeKey(key []byte, par int) int {
	if par == 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write(key)
	return int(h.Sum32() % uint32(par))
}

// watermarkForwarder forwards the minimum watermark across a stage's
// workers downstream, so the next stage observes one consistent stage
// watermark per round.
type watermarkForwarder struct {
	mu   sync.Mutex
	wms  []int64
	last int64
	emit func(int64, int64)
}

func newWatermarkForwarder(workers int, emit func(int64, int64)) *watermarkForwarder {
	wms := make([]int64, workers)
	for i := range wms {
		wms[i] = -1 << 62
	}
	return &watermarkForwarder{wms: wms, last: -1 << 62, emit: emit}
}

func (f *watermarkForwarder) observe(worker int, wm int64, wallNS int64) {
	f.mu.Lock()
	if wm > f.wms[worker] {
		f.wms[worker] = wm
	}
	min := f.wms[0]
	for _, v := range f.wms[1:] {
		if v < min {
			min = v
		}
	}
	advanced := min > f.last
	if advanced {
		f.last = min
	}
	f.mu.Unlock()
	if advanced {
		f.emit(min, wallNS)
	}
}
