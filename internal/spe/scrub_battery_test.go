package spe

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"flowkv/internal/core"
	"flowkv/internal/faultfs"
)

// The scrub battery: plant silent corruption (bit flips, zeroed pages,
// stale blocks) in committed job state — checkpoint segments, manifests,
// metadata sidecars, the JOB file, the sink ledger — and require that
// the rot is never served as valid output. A resumed job either repairs
// around the damage (quarantine the tip, fall back to an older retained
// generation) and produces a ledger byte-identical to the golden run, or
// it fails typed; and whenever the on-disk bytes diverge from golden,
// offline verification (VerifyJobDir) must flag the directory.

// scrubIters returns the iteration count for the randomized battery.
// FLOWKV_SCRUB_ITERS overrides (the CI nightly runs longer).
func scrubIters(t *testing.T) int {
	if s := os.Getenv("FLOWKV_SCRUB_ITERS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad FLOWKV_SCRUB_ITERS %q", s)
		}
		return n
	}
	if testing.Short() {
		return 6
	}
	return 36
}

// jobFiles lists every regular file under the job directory, sorted,
// skipping quarantine markers (rotting a marker is not data corruption).
func jobFiles(t *testing.T, dir string) []string {
	t.Helper()
	var out []string
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || d.Name() == "QUARANTINE" {
			return err
		}
		out = append(out, path)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatalf("no files under %s", dir)
	}
	return out
}

// rotTipCheckpoint flips a byte in the largest checkpoint file of the
// committed tip generation — rot inside state that restore must read.
func rotTipCheckpoint(t *testing.T, jobDir string, gen int64) string {
	t.Helper()
	var target string
	var size int64
	gdir := filepath.Join(jobDir, genDirName(gen))
	err := filepath.WalkDir(gdir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || d.Name() == genMetaName || d.Name() == "QUARANTINE" {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		if info.Size() > size {
			target, size = path, info.Size()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if target == "" {
		t.Fatalf("no checkpoint files under %s", gdir)
	}
	if err := faultfs.CorruptAtRest(nil, target, faultfs.CorruptBitFlip, -1); err != nil {
		t.Fatal(err)
	}
	return target
}

// TestJobResumeRejectsRottenTip: with a single retained generation there
// is nothing to fall back to — Resume over a bit-flipped tip must fail
// typed (core.ErrCheckpointInvalid), quarantine the generation, and keep
// failing on retry rather than ever serving the rotten state.
func TestJobResumeRejectsRottenTip(t *testing.T) {
	tuples := crashTuples(500)
	const every = 97
	pat := crashPatterns()[0]
	base := t.TempDir()
	src := NewSliceSource(tuples)
	mk := func(kill int64) *Job {
		return &Job{
			Pipeline:        crashPipeline(pat, filepath.Join(base, "state"), nil, 1<<10),
			Source:          src,
			Dir:             filepath.Join(base, "job"),
			CheckpointEvery: every,
			KillAfterTuples: kill,
		}
	}
	if _, err := mk(3*every + 10).Run(); !errors.Is(err, ErrJobKilled) {
		t.Fatalf("run: %v", err)
	}
	meta, err := ReadJobMeta(nil, filepath.Join(base, "job"))
	if err != nil {
		t.Fatal(err)
	}
	rotTipCheckpoint(t, filepath.Join(base, "job"), meta.Gen)
	if err := VerifyJobDir(nil, filepath.Join(base, "job")); err == nil {
		t.Fatal("offline verify accepted a rotted generation")
	}
	for attempt := 0; attempt < 2; attempt++ {
		if _, err := mk(0).Resume(); !errors.Is(err, core.ErrCheckpointInvalid) {
			t.Fatalf("resume attempt %d over rotten tip: %v", attempt, err)
		}
	}
	tip := filepath.Join(base, "job", genDirName(meta.Gen))
	if !core.IsQuarantined(nil, tip) {
		t.Fatal("rotten tip was not quarantined")
	}
}

// TestJobResumeFallsBackToRetainedGeneration: with RetainGenerations=2
// a bit-flipped tip is quarantined and Resume restarts from the previous
// generation's GENMETA — replaying further back but still committing a
// ledger byte-identical to the uninterrupted golden run.
func TestJobResumeFallsBackToRetainedGeneration(t *testing.T) {
	tuples := crashTuples(500)
	const every = 97
	for _, pat := range crashPatterns() {
		pat := pat
		t.Run(pat.name, func(t *testing.T) {
			t.Parallel()
			golden := goldenLedger(t, pat, tuples, every, 1<<10)
			base := t.TempDir()
			src := NewSliceSource(tuples)
			mk := func(kill int64) *Job {
				return &Job{
					Pipeline:          crashPipeline(pat, filepath.Join(base, "state"), nil, 1<<10),
					Source:            src,
					Dir:               filepath.Join(base, "job"),
					CheckpointEvery:   every,
					KillAfterTuples:   kill,
					RetainGenerations: 2,
				}
			}
			if _, err := mk(3*every + 10).Run(); !errors.Is(err, ErrJobKilled) {
				t.Fatalf("run: %v", err)
			}
			jobDir := filepath.Join(base, "job")
			meta, err := ReadJobMeta(nil, jobDir)
			if err != nil {
				t.Fatal(err)
			}
			if meta.Gen < 2 {
				t.Fatalf("want >= 2 committed generations, got %d", meta.Gen)
			}
			gens, err := ListGenerations(nil, jobDir)
			if err != nil || len(gens) != 2 {
				t.Fatalf("retained generations: %v (err %v)", gens, err)
			}
			rotTipCheckpoint(t, jobDir, meta.Gen)

			res, err := mk(0).Resume()
			if err != nil {
				t.Fatalf("resume with fallback: %v", err)
			}
			if !res.Final {
				t.Fatal("job not final after fallback resume")
			}
			checkLedger(t, jobDir, golden)
			if err := VerifyJobDir(nil, jobDir); err != nil {
				t.Fatalf("offline verify after fallback: %v", err)
			}
		})
	}
}

// TestScrubBatteryEveryFileClass is the randomized rot battery: each
// iteration kills a job mid-stream, plants one corruption (rotating
// kind) in one committed file (rotating over every file class the job
// directory holds — checkpoint segments, MANIFEST, APPMETA, GENMETA,
// JOB, SINK.log), then drives resume. The invariant is freedom from
// silent corruption: if the job reaches Final and offline verification
// is clean, the ledger must equal golden; any divergence must be
// detected by a typed resume error or by VerifyJobDir.
func TestScrubBatteryEveryFileClass(t *testing.T) {
	iters := scrubIters(t)
	tuples := crashTuples(450)
	const every = 79
	pats := crashPatterns()
	goldens := make([][]byte, len(pats))
	for i, pat := range pats {
		goldens[i] = goldenLedger(t, pat, tuples, every, 1<<10)
	}
	kinds := []faultfs.CorruptKind{faultfs.CorruptBitFlip, faultfs.CorruptZeroPage, faultfs.CorruptStale}
	rng := rand.New(rand.NewSource(0x5c12b))
	base := t.TempDir()
	for i := 0; i < iters; i++ {
		pi := i % len(pats)
		pat, golden := pats[pi], goldens[pi]
		dir := filepath.Join(base, fmt.Sprintf("i%03d", i))
		jobDir := filepath.Join(dir, "job")
		src := NewSliceSource(tuples)
		mk := func(kill int64) *Job {
			return &Job{
				Pipeline:          crashPipeline(pat, filepath.Join(dir, "state"), nil, 1<<10),
				Source:            src,
				Dir:               jobDir,
				CheckpointEvery:   every,
				KillAfterTuples:   kill,
				RetainGenerations: 2,
			}
		}
		kill := int64(2*every) + rng.Int63n(int64(len(tuples)-2*every))
		if _, err := mk(kill).Run(); !errors.Is(err, ErrJobKilled) {
			t.Fatalf("iter %d: run: %v", i, err)
		}

		files := jobFiles(t, jobDir)
		target := files[rng.Intn(len(files))]
		kind := kinds[i%len(kinds)]
		if err := faultfs.CorruptAtRest(nil, target, kind, -1); err != nil {
			t.Fatalf("iter %d: rot %s: %v", i, target, err)
		}

		var res *JobResult
		var resumeErr error
		for attempt := 0; attempt < 10; attempt++ {
			res, resumeErr = runOrResume(mk(0))
			if resumeErr != nil {
				break // detection: a typed failure, never wrong bytes
			}
			if res.Final {
				break
			}
		}
		verifyErr := VerifyJobDir(nil, jobDir)
		rel, _ := filepath.Rel(jobDir, target)
		switch {
		case resumeErr != nil:
			// Detected. The rot must also be independently visible offline
			// unless resume already quarantined it into a typed marker (a
			// quarantined generation is a verify failure too).
			if verifyErr == nil {
				t.Fatalf("iter %d (%s %v): resume failed (%v) but offline verify is clean",
					i, rel, kind, resumeErr)
			}
		case res != nil && res.Final:
			got, err := os.ReadFile(filepath.Join(jobDir, ledgerName))
			if err != nil {
				t.Fatalf("iter %d: read ledger: %v", i, err)
			}
			if !bytes.Equal(got, golden) && verifyErr == nil {
				t.Fatalf("iter %d (%s %v): silent corruption — job final, verify clean, ledger diverges",
					i, rel, kind)
			}
		default:
			t.Fatalf("iter %d (%s %v): job neither final nor failed", i, rel, kind)
		}
	}
}
