package spe

import (
	"sort"
	"sync"

	"flowkv/internal/statebackend"
	"flowkv/internal/window"
)

// Shared-backend support for holistic aggregates over aligned windows.
//
// In ShareBackend mode every worker of a stage hits one store, but the
// holistic aligned trigger path bulk-reads a whole window — which would
// steal the keys of workers whose watermark has not passed the window
// end yet. The worker view fixes the read side: each worker's ReadWindow
// is served as a non-consuming drain filtered to the keys it owns
// (routeKey(key, par) == worker). The drop side is deferred to a
// per-stage tracker: a window's merged state is unlinked wholesale only
// once (a) every worker that appended into it has fired it, and (b) the
// stage-minimum watermark has passed the window end. Condition (b) makes
// late appends impossible after the drop — once min(wm) >= End, every
// worker's operator classifies further tuples of that window as late —
// so a slower worker can neither lose unread keys nor revive a dropped
// window.

// sharedDrops coordinates the deferred whole-window drops of one shared
// stage. All methods are safe for concurrent use by the stage's workers.
type sharedDrops struct {
	drop func(window.Window) error

	mu      sync.Mutex
	wms     []int64               // last watermark each worker processed
	pending map[window.Window]int // workers registered, not yet fired
	fired   []window.Window       // fully fired, waiting for the stage-min watermark
}

func newSharedDrops(par int, drop func(window.Window) error) *sharedDrops {
	wms := make([]int64, par)
	for i := range wms {
		wms[i] = -1 << 62
	}
	return &sharedDrops{drop: drop, wms: wms, pending: make(map[window.Window]int)}
}

// noteRegister records that one more worker holds live state in win (its
// first append, or a restored registration).
func (d *sharedDrops) noteRegister(win window.Window) {
	d.mu.Lock()
	d.pending[win]++
	d.mu.Unlock()
}

// noteFired records that one registered worker drained its keys from
// win. When the last one fires, the window joins the drop queue.
func (d *sharedDrops) noteFired(win window.Window) error {
	d.mu.Lock()
	d.pending[win]--
	if d.pending[win] <= 0 {
		delete(d.pending, win)
		d.fired = append(d.fired, win)
	}
	return d.dropDueLocked()
}

// noteWM records worker w's watermark and unlinks every fully-fired
// window the stage minimum has passed.
func (d *sharedDrops) noteWM(w int, wm int64) error {
	d.mu.Lock()
	if wm > d.wms[w] {
		d.wms[w] = wm
	}
	return d.dropDueLocked()
}

// reseedWM seeds worker w's restored watermark after a job resume,
// before any window registrations are replayed.
func (d *sharedDrops) reseedWM(w int, wm int64) {
	d.mu.Lock()
	if wm > d.wms[w] {
		d.wms[w] = wm
	}
	d.mu.Unlock()
}

// snapshotFired returns the fully-fired windows still queued for the
// stage-min watermark, sorted canonically — the tracker state a
// single-owner checkpoint cut must persist: these windows appear in no
// worker's operator snapshot anymore (every owner drained its keys),
// yet their merged state is still linked in the shared store.
func (d *sharedDrops) snapshotFired() []window.Window {
	d.mu.Lock()
	out := append([]window.Window(nil), d.fired...)
	d.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].End < out[j].End
	})
	return out
}

// reseedFired requeues a committed fired-window list after a job
// resume, before any worker goroutine starts. The windows unlink at the
// first watermark advance past their end (or at Finish), exactly as
// they would have in the uninterrupted run.
func (d *sharedDrops) reseedFired(wins []window.Window) {
	if len(wins) == 0 {
		return
	}
	d.mu.Lock()
	d.fired = append(d.fired, wins...)
	d.mu.Unlock()
}

// dropDueLocked unlinks the due windows. The caller holds mu, which is
// released before the drops (store I/O never runs under the tracker
// lock).
func (d *sharedDrops) dropDueLocked() error {
	min := d.wms[0]
	for _, v := range d.wms[1:] {
		if v < min {
			min = v
		}
	}
	var due []window.Window
	kept := d.fired[:0]
	for _, win := range d.fired {
		if win.End <= min {
			due = append(due, win)
		} else {
			kept = append(kept, win)
		}
	}
	d.fired = kept
	d.mu.Unlock()
	for _, win := range due {
		if err := d.drop(win); err != nil {
			return err
		}
	}
	return nil
}

// workerView is the per-worker facade over a shared stage backend. It
// delegates everything to the shared backend except the holistic aligned
// trigger path: ReadWindow serves only the keys this worker owns,
// without consuming the window, and Append registers the window with the
// drop tracker. Capability probes (checkpointing, health, self-heal)
// look through it via Unwrap.
//
// A view is used from its worker's goroutine only (like any private
// backend); the shared backend underneath and the drop tracker carry the
// cross-worker synchronization.
type workerView struct {
	statebackend.Backend
	part   statebackend.PartitionedWindowReader // nil: fall back to per-key reads
	drops  *sharedDrops                         // nil when part is nil
	worker int
	par    int
	seen   map[window.Window]struct{} // windows registered with the tracker
}

func newWorkerView(shared statebackend.Backend, part statebackend.PartitionedWindowReader, drops *sharedDrops, worker, par int) *workerView {
	return &workerView{
		Backend: shared,
		part:    part,
		drops:   drops,
		worker:  worker,
		par:     par,
		seen:    make(map[window.Window]struct{}),
	}
}

// Unwrap lets capability probes reach the shared backend.
func (v *workerView) Unwrap() statebackend.Backend { return v.Backend }

func (v *workerView) owns(key []byte) bool { return routeKey(key, v.par) == v.worker }

// register records this worker's first append into w with the tracker.
func (v *workerView) register(w window.Window) {
	if v.drops == nil {
		return
	}
	if _, ok := v.seen[w]; ok {
		return
	}
	v.seen[w] = struct{}{}
	v.drops.noteRegister(w)
}

func (v *workerView) Append(key, value []byte, w window.Window, ts int64) error {
	v.register(w)
	return v.Backend.Append(key, value, w, ts)
}

// ReadWindow drains this worker's own key range from w without consuming
// the window; the tracker unlinks the merged state once every owner has
// fired and the stage watermark has passed. Shared backends without
// partitioned reads report ok=false, sending the operator to its per-key
// ReadAppended fallback — which is naturally partitioned, since each
// worker only knows its own registered keys.
func (v *workerView) ReadWindow(w window.Window, emit func(key []byte, values [][]byte) error) (bool, error) {
	if v.part == nil {
		return false, nil
	}
	if err := v.part.ReadWindowOwned(w, v.owns, emit); err != nil {
		return true, err
	}
	if v.drops != nil {
		if _, ok := v.seen[w]; ok {
			delete(v.seen, w)
			if err := v.drops.noteFired(w); err != nil {
				return true, err
			}
		}
	}
	return true, nil
}

var (
	_ statebackend.Backend   = (*workerView)(nil)
	_ statebackend.Unwrapper = (*workerView)(nil)
)
