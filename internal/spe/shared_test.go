package spe

import (
	"encoding/binary"
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"

	"flowkv/internal/core"
	"flowkv/internal/statebackend"
	"flowkv/internal/window"
)

// sessionSource emits rounds sessions of 5 tuples for each of keys keys,
// interleaved so global timestamps are non-decreasing. Sessions of one
// key are 1000 apart, far beyond the 20 gap, so every key produces
// exactly rounds results of "5".
func sessionSource(keys, rounds int) Source {
	return func(emit func(Tuple)) {
		for r := 0; r < rounds; r++ {
			base := int64(r) * 1000
			for i := 0; i < 5; i++ {
				for k := 0; k < keys; k++ {
					emit(Tuple{
						Key:   []byte(fmt.Sprintf("k%02d", k)),
						Value: []byte(strings.Repeat("v", 32)),
						TS:    base + int64(i)*2,
					})
				}
			}
		}
	}
}

func collectSink() (func(Tuple), func() map[string][]string) {
	var mu sync.Mutex
	got := make(map[string][]string)
	sink := func(t Tuple) {
		mu.Lock()
		got[string(t.Key)] = append(got[string(t.Key)], string(t.Value))
		mu.Unlock()
	}
	return sink, func() map[string][]string {
		mu.Lock()
		defer mu.Unlock()
		return got
	}
}

func checkSessions(t *testing.T, got map[string][]string, keys, rounds int) {
	t.Helper()
	if len(got) != keys {
		t.Fatalf("results for %d keys, want %d", len(got), keys)
	}
	for k, vs := range got {
		if len(vs) != rounds {
			t.Errorf("key %s: %d results, want %d: %v", k, len(vs), rounds, vs)
			continue
		}
		for _, v := range vs {
			if v != "5" {
				t.Errorf("key %s: session size %s, want 5", k, v)
			}
		}
	}
}

// TestSharedBackendFlowKVSession runs 4 workers against one shared FlowKV
// AUR store (session windows, holistic aggregate). Workers own disjoint
// key ranges but hit the same composite store concurrently; the tiny
// write buffer forces flushes, predictive batch reads, and compactions
// under that concurrency.
func TestSharedBackendFlowKVSession(t *testing.T) {
	const keys, rounds = 32, 3
	assigner := window.SessionAssigner{Gap: 20}
	pipe := &Pipeline{
		WatermarkEvery: 64,
		Stages: []Stage{{
			Name:         "session",
			Parallelism:  4,
			ShareBackend: true,
			Window:       &OperatorSpec{Assigner: assigner, Holistic: listLenAgg},
			NewBackend: func(int) (statebackend.Backend, error) {
				return statebackend.Open(statebackend.Config{
					Kind:       statebackend.KindFlowKV,
					Dir:        filepath.Join(t.TempDir(), "shared-aur"),
					Agg:        core.AggHolistic,
					WindowKind: window.Session,
					Assigner:   assigner,
					FlowKV: core.Options{
						WriteBufferBytes:      4 << 10, // force the disk path
						Instances:             4,
						MaxSpaceAmplification: 1.2,
					},
				})
			},
		}},
	}
	sink, got := collectSink()
	if _, err := Run(pipe, sessionSource(keys, rounds), sink); err != nil {
		t.Fatal(err)
	}
	checkSessions(t, got(), keys, rounds)
}

// TestSharedBackendFlowKVIncremental runs 4 workers against one shared
// FlowKV RMW store (fixed windows, incremental count): every tuple is a
// read-modify-write against the shared store.
func TestSharedBackendFlowKVIncremental(t *testing.T) {
	const keys = 32
	assigner := window.FixedAssigner{Size: 100}
	spec := OperatorSpec{
		Assigner: assigner,
		Incremental: IncrementalFunc{AddFunc: countAgg.AddFunc, MergeFunc: countAgg.MergeFunc,
			ResultFunc: func(acc []byte) []byte {
				return []byte(strconv.FormatUint(binary.LittleEndian.Uint64(acc), 10))
			}},
	}
	pipe := &Pipeline{
		WatermarkEvery: 64,
		Stages: []Stage{{
			Name:         "count",
			Parallelism:  4,
			ShareBackend: true,
			Window:       &spec,
			NewBackend: func(int) (statebackend.Backend, error) {
				return statebackend.Open(statebackend.Config{
					Kind:       statebackend.KindFlowKV,
					Dir:        filepath.Join(t.TempDir(), "shared-rmw"),
					Agg:        core.AggIncremental,
					WindowKind: window.Fixed,
					Assigner:   assigner,
					FlowKV: core.Options{
						WriteBufferBytes: 4 << 10,
						Instances:        4,
					},
				})
			},
		}},
	}
	source := func(emit func(Tuple)) {
		for ts := 0; ts < 300; ts++ {
			for k := 0; k < keys; k++ {
				emit(Tuple{Key: []byte(fmt.Sprintf("k%02d", k)), TS: int64(ts)})
			}
		}
	}
	sink, got := collectSink()
	if _, err := Run(pipe, source, sink); err != nil {
		t.Fatal(err)
	}
	res := got()
	if len(res) != keys {
		t.Fatalf("results for %d keys, want %d", len(res), keys)
	}
	for k, vs := range res {
		if len(vs) != 3 {
			t.Errorf("key %s: %d windows, want 3: %v", k, len(vs), vs)
			continue
		}
		for i, v := range vs {
			if v != "100" {
				t.Errorf("key %s window %d: count %s, want 100", k, i, v)
			}
		}
	}
}

// runSharedHolisticAligned runs a 4-worker fixed-window holistic count
// over the given shared backend constructor and checks the exact result
// set: 3 windows of 100 tuples for each of 24 keys. The holistic+aligned
// trigger path bulk-reads whole windows, which naively would consume keys
// owned by workers whose watermark has not passed yet — the per-worker
// view must serve each worker only its own key range.
func runSharedHolisticAligned(t *testing.T, newBackend func(int) (statebackend.Backend, error)) {
	t.Helper()
	const keys = 24
	pipe := &Pipeline{
		WatermarkEvery: 64,
		Stages: []Stage{{
			Name:         "count",
			Parallelism:  4,
			ShareBackend: true,
			Window:       &OperatorSpec{Assigner: window.FixedAssigner{Size: 100}, Holistic: listLenAgg},
			NewBackend:   newBackend,
		}},
	}
	source := func(emit func(Tuple)) {
		for ts := 0; ts < 300; ts++ {
			for k := 0; k < keys; k++ {
				emit(Tuple{Key: []byte(fmt.Sprintf("k%02d", k)), TS: int64(ts)})
			}
		}
	}
	sink, got := collectSink()
	if _, err := Run(pipe, source, sink); err != nil {
		t.Fatal(err)
	}
	res := got()
	if len(res) != keys {
		t.Fatalf("results for %d keys, want %d", len(res), keys)
	}
	for k, vs := range res {
		if len(vs) != 3 {
			t.Errorf("key %s: %d windows, want 3: %v", k, len(vs), vs)
			continue
		}
		for i, v := range vs {
			if v != "100" {
				t.Errorf("key %s window %d: count %s, want 100", k, i, v)
			}
		}
	}
}

// TestSharedBackendFlowKVHolisticAligned drives the partitioned drain
// path: one shared FlowKV AAR store, each worker's ReadWindow served as a
// non-consuming key-filtered scan, the merged window dropped wholesale
// once every owner fired and the stage watermark passed.
func TestSharedBackendFlowKVHolisticAligned(t *testing.T) {
	assigner := window.FixedAssigner{Size: 100}
	runSharedHolisticAligned(t, func(int) (statebackend.Backend, error) {
		return statebackend.Open(statebackend.Config{
			Kind:       statebackend.KindFlowKV,
			Dir:        filepath.Join(t.TempDir(), "shared-aar"),
			Agg:        core.AggHolistic,
			WindowKind: window.Fixed,
			Assigner:   assigner,
			FlowKV: core.Options{
				WriteBufferBytes: 4 << 10, // force the disk path
				Instances:        4,
			},
		})
	})
}

// TestSharedBackendHolisticAlignedFallback drives the per-key fallback:
// a shared backend without partitioned window reads (in-mem) makes the
// worker view return ok=false from ReadWindow, and each worker drains
// only its own registered keys via ReadAppended.
func TestSharedBackendHolisticAlignedFallback(t *testing.T) {
	runSharedHolisticAligned(t, func(int) (statebackend.Backend, error) {
		return memBackend(t), nil
	})
}

// TestSharedBackendSynchronizedLSM: a non-FlowKV backend shared across
// workers goes through the Synchronized wrapper and must still produce
// exact results.
func TestSharedBackendSynchronizedLSM(t *testing.T) {
	const keys, rounds = 16, 2
	assigner := window.SessionAssigner{Gap: 20}
	pipe := &Pipeline{
		WatermarkEvery: 64,
		Stages: []Stage{{
			Name:         "session-lsm",
			Parallelism:  4,
			ShareBackend: true,
			Window:       &OperatorSpec{Assigner: assigner, Holistic: listLenAgg},
			NewBackend: func(int) (statebackend.Backend, error) {
				return statebackend.Open(statebackend.Config{
					Kind: statebackend.KindRocksDB,
					Dir:  filepath.Join(t.TempDir(), "shared-lsm"),
				})
			},
		}},
	}
	sink, got := collectSink()
	if _, err := Run(pipe, sessionSource(keys, rounds), sink); err != nil {
		t.Fatal(err)
	}
	checkSessions(t, got(), keys, rounds)
}
