package spe

import (
	"container/heap"
	"fmt"
	"sort"

	"flowkv/internal/binio"
	"flowkv/internal/window"
)

// Operator state snapshots. A job checkpoint must capture not just the
// backend's durable state but the window operator's in-memory control
// state — which windows are registered, where the watermark stands, which
// sessions are live — or a restored pipeline would re-create windows for
// replayed tuples without knowing which triggers are still owed. The
// snapshot is stored as the backend checkpoint's application metadata
// (core's APPMETA file), so it commits atomically with the store cut it
// describes.
//
// Only reconstructible scheduling structures are omitted: the aligned
// window heap is rebuilt from the registered window set, session timers
// re-arm from the live sessions, and custom-window timers re-arm at each
// window's end. Everything the omitted structures encode is derived from
// serialized state, so the restored operator fires the same triggers in
// the same order.

// opSnapMagic versions the operator snapshot encoding.
const opSnapMagic = "flowkv-opsnap1\n"

// snapshotState serializes the operator's control state. Maps are
// emitted in sorted order so identical states produce identical bytes.
func (o *WindowOperator) snapshotState() []byte {
	b := []byte(opSnapMagic)
	b = binio.PutVarint(b, o.wm)
	b = binio.PutVarint(b, o.resultsEmitted)
	b = binio.PutVarint(b, o.lateDropped)
	b = binio.PutVarint(b, o.triggersFired)

	// Aligned windows: window -> key set.
	wins := make([]window.Window, 0, len(o.aligned))
	for w := range o.aligned {
		wins = append(wins, w)
	}
	sort.Slice(wins, func(i, j int) bool { return wins[i].Before(wins[j]) })
	b = binio.PutUvarint(b, uint64(len(wins)))
	for _, w := range wins {
		b = w.AppendTo(b)
		keys := sortedKeys(o.aligned[w])
		b = binio.PutUvarint(b, uint64(len(keys)))
		for _, k := range keys {
			b = binio.PutString(b, k)
		}
	}

	// Sessions: key -> live sessions. The initials order is preserved:
	// initials[0] identifies where the incremental accumulator lives.
	skeys := make([]string, 0, len(o.sessions))
	for k := range o.sessions {
		skeys = append(skeys, k)
	}
	sort.Strings(skeys)
	b = binio.PutUvarint(b, uint64(len(skeys)))
	for _, k := range skeys {
		list := o.sessions[k]
		b = binio.PutString(b, k)
		b = binio.PutUvarint(b, uint64(len(list)))
		for _, s := range list {
			b = s.cur.AppendTo(b)
			b = binio.PutUvarint(b, uint64(len(s.initials)))
			for _, iw := range s.initials {
				b = iw.AppendTo(b)
			}
		}
	}

	// Custom windows: key -> window -> max tuple timestamp.
	ckeys := make([]string, 0, len(o.custom))
	for k := range o.custom {
		ckeys = append(ckeys, k)
	}
	sort.Strings(ckeys)
	b = binio.PutUvarint(b, uint64(len(ckeys)))
	for _, k := range ckeys {
		set := o.custom[k]
		b = binio.PutString(b, k)
		cwins := make([]window.Window, 0, len(set))
		for w := range set {
			cwins = append(cwins, w)
		}
		sort.Slice(cwins, func(i, j int) bool { return cwins[i].Before(cwins[j]) })
		b = binio.PutUvarint(b, uint64(len(cwins)))
		for _, w := range cwins {
			b = w.AppendTo(b)
			b = binio.PutVarint(b, set[w])
		}
	}

	// Count windows: key -> element counter.
	nkeys := make([]string, 0, len(o.counts))
	for k := range o.counts {
		nkeys = append(nkeys, k)
	}
	sort.Strings(nkeys)
	b = binio.PutUvarint(b, uint64(len(nkeys)))
	for _, k := range nkeys {
		b = binio.PutString(b, k)
		b = binio.PutVarint(b, o.counts[k])
	}
	return b
}

func sortedKeys(set map[string]struct{}) []string {
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// restoreState rebuilds the operator's control state from a snapshot.
// The operator must be freshly constructed; scheduling structures
// (aligned heap, session and custom-window timers) are re-derived from
// the decoded state.
func (o *WindowOperator) restoreState(b []byte) error {
	d := snapDecoder{b: b}
	if err := d.magic(opSnapMagic); err != nil {
		return err
	}
	o.wm = d.varint()
	o.resultsEmitted = d.varint()
	o.lateDropped = d.varint()
	o.triggersFired = d.varint()

	o.aligned = make(map[window.Window]map[string]struct{})
	o.alignedHeap = o.alignedHeap[:0]
	for n := d.uvarint(); n > 0; n-- {
		w := d.window()
		set := make(map[string]struct{})
		for kn := d.uvarint(); kn > 0; kn-- {
			set[d.str()] = struct{}{}
		}
		if d.err != nil {
			break
		}
		o.aligned[w] = set
		o.alignedHeap = append(o.alignedHeap, w)
	}
	heap.Init(&o.alignedHeap)

	o.sessions = make(map[string][]*session)
	o.armedAt = make(map[string]int64)
	o.timers = o.timers[:0]
	for n := d.uvarint(); n > 0; n-- {
		key := d.str()
		var list []*session
		for sn := d.uvarint(); sn > 0; sn-- {
			s := &session{cur: d.window()}
			for in := d.uvarint(); in > 0; in-- {
				s.initials = append(s.initials, d.window())
			}
			list = append(list, s)
		}
		if d.err != nil {
			break
		}
		o.sessions[key] = list
	}

	o.custom = make(map[string]map[window.Window]int64)
	for n := d.uvarint(); n > 0; n-- {
		key := d.str()
		set := make(map[window.Window]int64)
		var cwins []window.Window
		for wn := d.uvarint(); wn > 0; wn-- {
			w := d.window()
			set[w] = d.varint()
			cwins = append(cwins, w)
		}
		if d.err != nil {
			break
		}
		o.custom[key] = set
		for _, w := range cwins {
			heap.Push(&o.timers, timerEntry{at: w.End, key: key, w: w})
		}
	}

	o.counts = make(map[string]int64)
	for n := d.uvarint(); n > 0; n-- {
		key := d.str()
		o.counts[key] = d.varint()
	}
	if d.err != nil {
		return fmt.Errorf("spe: corrupt operator snapshot: %w", d.err)
	}
	// Re-arm one session timer per key, exactly as live ingestion would.
	for key := range o.sessions {
		o.armSession(key)
	}
	return nil
}

// snapDecoder is a cursor over snapshot bytes that latches the first
// decode error, keeping the happy path free of per-field error plumbing.
type snapDecoder struct {
	b   []byte
	err error
}

func (d *snapDecoder) magic(m string) error {
	if len(d.b) < len(m) || string(d.b[:len(m)]) != m {
		return fmt.Errorf("spe: not an operator snapshot (bad magic)")
	}
	d.b = d.b[len(m):]
	return nil
}

func (d *snapDecoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n, err := binio.Varint(d.b)
	if err != nil {
		d.err = err
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *snapDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n, err := binio.Uvarint(d.b)
	if err != nil {
		d.err = err
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *snapDecoder) bytes() []byte {
	if d.err != nil {
		return nil
	}
	p, n, err := binio.Bytes(d.b)
	if err != nil {
		d.err = err
		return nil
	}
	d.b = d.b[n:]
	return append([]byte(nil), p...)
}

func (d *snapDecoder) str() string {
	if d.err != nil {
		return ""
	}
	s, n, err := binio.String(d.b)
	if err != nil {
		d.err = err
		return ""
	}
	d.b = d.b[n:]
	return s
}

func (d *snapDecoder) window() window.Window {
	if d.err != nil {
		return window.Window{}
	}
	w, n, err := window.Decode(d.b)
	if err != nil {
		d.err = err
		return window.Window{}
	}
	d.b = d.b[n:]
	return w
}
