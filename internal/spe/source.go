package spe

import "fmt"

// SeekableSource is the replayable input contract required by jobs
// (checkpointed pipeline runs). Unlike the fire-hose Source used by Run,
// a SeekableSource is pulled one tuple at a time, reports how far it has
// been consumed, and can be repositioned — which is what lets a resumed
// job replay exactly the tuples that followed its last committed
// checkpoint. Offsets are opaque to the SPE: a source defines its own
// unit (an index, a tuple count, a byte position) as long as
// SeekTo(Offset()) restores the exact read position, including any
// internal generator state, so the replayed suffix is byte-identical to
// the original stream.
type SeekableSource interface {
	// Next returns the next tuple, or ok=false at end of stream. Tuples
	// arrive in non-decreasing timestamp order (the same contract as
	// Source).
	Next() (t Tuple, ok bool)
	// Offset reports the current read position: the value SeekTo needs to
	// continue from exactly here.
	Offset() int64
	// SeekTo repositions the source so the next Next call returns the
	// tuple that followed offset. Seeking backward must regenerate the
	// identical stream (deterministic sources).
	SeekTo(offset int64) error
}

// SliceSource replays an in-memory tuple slice; the offset is the slice
// index. It is the reference SeekableSource used by tests.
type SliceSource struct {
	// Tuples is the stream, in non-decreasing timestamp order.
	Tuples []Tuple
	pos    int64
}

// NewSliceSource returns a SliceSource over tuples.
func NewSliceSource(tuples []Tuple) *SliceSource {
	return &SliceSource{Tuples: tuples}
}

// Next implements SeekableSource.
func (s *SliceSource) Next() (Tuple, bool) {
	if s.pos >= int64(len(s.Tuples)) {
		return Tuple{}, false
	}
	t := s.Tuples[s.pos]
	s.pos++
	return t, true
}

// Offset implements SeekableSource.
func (s *SliceSource) Offset() int64 { return s.pos }

// SeekTo implements SeekableSource.
func (s *SliceSource) SeekTo(offset int64) error {
	if offset < 0 || offset > int64(len(s.Tuples)) {
		return fmt.Errorf("spe: seek %d out of range [0,%d]", offset, len(s.Tuples))
	}
	s.pos = offset
	return nil
}

var _ SeekableSource = (*SliceSource)(nil)
