// Package spe implements a miniature stream processing engine — the
// repository's stand-in for Apache Flink. It exists to drive state
// backends with exactly the call sequences a real SPE produces (§2.1):
//
//   - infinite streams of timestamped key-value tuples;
//   - key-partitioned physical operators, each a single-threaded worker
//     owning a private store instance;
//   - event-time processing with watermarks flowing through the dataflow
//     (broadcast downstream, min-combined across inputs);
//   - stateful window operators supporting fixed, sliding, session,
//     count and global windows, with incremental (RMW) and holistic
//     (Append) aggregation, session-window merging, replication of
//     tuples into overlapping sliding windows, and per-key or aligned
//     triggers.
//
// Pipelines are small DAGs of window and map stages connected by bounded
// channels (natural backpressure), terminated by a sink that measures
// result counts and event-to-emission latency.
package spe

import (
	"fmt"

	"flowkv/internal/window"
)

// Tuple is one stream element e = (k, v, t) (§2.1), plus the wall-clock
// instant it entered the pipeline, which latency probes carry through to
// the sink.
type Tuple struct {
	// Key partitions the stream; Value is the payload.
	Key   []byte
	Value []byte
	// TS is the event-time timestamp in milliseconds.
	TS int64
	// WallNS is the wall-clock origin used for end-to-end latency.
	WallNS int64
}

// Message is what flows on inter-operator channels: a tuple or a
// watermark.
type Message struct {
	// Tuple is valid when IsWatermark is false.
	Tuple Tuple
	// Watermark asserts no further tuples with TS < Watermark will
	// arrive on this input.
	Watermark int64
	// IsWatermark discriminates the union.
	IsWatermark bool
	// WallNS is the wall clock at the message's origin.
	WallNS int64
	// barrier, when non-nil, marks a checkpoint alignment point (job
	// runs); the tuple and watermark fields are ignored.
	barrier *barrier
}

// IncrementalAgg is an associative and commutative aggregate function
// applied incrementally (Flink's AggregateFunction): the operator keeps
// one accumulator per (key, window) and classifies as RMW (§3.1).
type IncrementalAgg interface {
	// Add folds a tuple into the accumulator; acc is nil for the first
	// tuple of a window.
	Add(acc []byte, t Tuple) []byte
	// Merge combines two accumulators (session-window merging).
	Merge(a, b []byte) []byte
	// Result converts the final accumulator into the emitted value.
	Result(acc []byte) []byte
}

// HolisticAgg is an aggregate function that needs every tuple of the
// window before triggering (Flink's ProcessWindowFunction): the operator
// appends tuple values and classifies as Append (§3.1). Result may return
// nil to emit nothing for a key.
type HolisticAgg interface {
	// Result computes the emitted value from the full value list of one
	// key in the triggered window.
	Result(key []byte, values [][]byte) []byte
}

// IncrementalFunc adapts plain functions to IncrementalAgg.
type IncrementalFunc struct {
	AddFunc    func(acc []byte, t Tuple) []byte
	MergeFunc  func(a, b []byte) []byte
	ResultFunc func(acc []byte) []byte
}

// Add implements IncrementalAgg.
func (f IncrementalFunc) Add(acc []byte, t Tuple) []byte { return f.AddFunc(acc, t) }

// Merge implements IncrementalAgg.
func (f IncrementalFunc) Merge(a, b []byte) []byte {
	if f.MergeFunc == nil {
		panic("spe: IncrementalFunc.Merge unset")
	}
	return f.MergeFunc(a, b)
}

// Result implements IncrementalAgg.
func (f IncrementalFunc) Result(acc []byte) []byte {
	if f.ResultFunc == nil {
		return acc
	}
	return f.ResultFunc(acc)
}

// HolisticFunc adapts a plain function to HolisticAgg.
type HolisticFunc func(key []byte, values [][]byte) []byte

// Result implements HolisticAgg.
func (f HolisticFunc) Result(key []byte, values [][]byte) []byte { return f(key, values) }

// OperatorSpec describes one logical window operation: the window
// function plus exactly one aggregate function. It carries everything
// FlowKV's launch-time classification needs (§3.1).
type OperatorSpec struct {
	// Assigner is the window function.
	Assigner window.Assigner
	// Incremental xor Holistic selects the aggregate interface.
	Incremental IncrementalAgg
	Holistic    HolisticAgg
	// ResultTS overrides the event time of emitted results; nil defaults
	// to window.End - 1 (count windows: the last tuple's timestamp).
	ResultTS func(w window.Window) int64
	// Profiler, when set on a custom-window operator, receives every
	// observed trigger so an adaptive predictor can learn ETTs (§8).
	// Share the same instance with the FlowKV backend's Predictor option.
	Profiler *window.AdaptivePredictor
}

// Validate checks the spec is well-formed.
func (s *OperatorSpec) Validate() error {
	if s.Assigner == nil {
		return fmt.Errorf("spe: operator needs a window assigner")
	}
	if (s.Incremental == nil) == (s.Holistic == nil) {
		return fmt.Errorf("spe: operator needs exactly one aggregate function")
	}
	return nil
}

// Holistic reports whether the operator appends tuple lists.
func (s *OperatorSpec) IsHolistic() bool { return s.Holistic != nil }
