package spe

import (
	"encoding/binary"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"testing"

	"flowkv/internal/core"
	"flowkv/internal/statebackend"
	"flowkv/internal/window"
)

// countAgg is an incremental count aggregate (uint64 accumulator).
var countAgg = IncrementalFunc{
	AddFunc: func(acc []byte, _ Tuple) []byte {
		var c uint64
		if acc != nil {
			c = binary.LittleEndian.Uint64(acc)
		}
		var out [8]byte
		binary.LittleEndian.PutUint64(out[:], c+1)
		return out[:]
	},
	MergeFunc: func(a, b []byte) []byte {
		var out [8]byte
		binary.LittleEndian.PutUint64(out[:],
			binary.LittleEndian.Uint64(a)+binary.LittleEndian.Uint64(b))
		return out[:]
	},
}

// listLenAgg is a holistic aggregate returning the value count.
var listLenAgg = HolisticFunc(func(_ []byte, values [][]byte) []byte {
	return []byte(strconv.Itoa(len(values)))
})

func memBackend(t testing.TB) statebackend.Backend {
	b, err := statebackend.Open(statebackend.Config{Kind: statebackend.KindInMem})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// collectOp runs tuples through a single operator and returns emissions.
func collectOp(t *testing.T, spec OperatorSpec, backend statebackend.Backend, tuples []Tuple, wms []int64) map[string][]string {
	t.Helper()
	got := make(map[string][]string)
	op, err := NewWindowOperator(spec, backend, func(out Tuple) {
		got[string(out.Key)] = append(got[string(out.Key)], string(out.Value))
	})
	if err != nil {
		t.Fatal(err)
	}
	wi := 0
	for _, tp := range tuples {
		if err := op.OnTuple(tp); err != nil {
			t.Fatal(err)
		}
		for wi < len(wms) && wms[wi] <= tp.TS {
			if err := op.OnWatermark(wms[wi], 0); err != nil {
				t.Fatal(err)
			}
			wi++
		}
	}
	if err := op.Finish(0); err != nil {
		t.Fatal(err)
	}
	backend.Destroy()
	return got
}

func TestFixedWindowIncremental(t *testing.T) {
	spec := OperatorSpec{
		Assigner: window.FixedAssigner{Size: 100},
		Incremental: IncrementalFunc{AddFunc: countAgg.AddFunc, MergeFunc: countAgg.MergeFunc,
			ResultFunc: func(acc []byte) []byte {
				return []byte(strconv.FormatUint(binary.LittleEndian.Uint64(acc), 10))
			}},
	}
	var tuples []Tuple
	for i := 0; i < 250; i++ { // windows [0,100): 100, [100,200): 100, [200,300): 50
		tuples = append(tuples, Tuple{Key: []byte("k"), TS: int64(i)})
	}
	got := collectOp(t, spec, memBackend(t), tuples, []int64{100, 200})
	want := []string{"100", "100", "50"}
	if len(got["k"]) != 3 {
		t.Fatalf("emissions = %v", got["k"])
	}
	for i, w := range want {
		if got["k"][i] != w {
			t.Errorf("window %d count = %s, want %s", i, got["k"][i], w)
		}
	}
}

func TestSlidingWindowReplication(t *testing.T) {
	// Size 100, slide 50: every tuple lands in two windows.
	spec := OperatorSpec{
		Assigner: window.SlidingAssigner{Size: 100, Slide: 50},
		Holistic: listLenAgg,
	}
	var tuples []Tuple
	for i := 0; i < 100; i++ {
		tuples = append(tuples, Tuple{Key: []byte("k"), TS: int64(i)})
	}
	got := collectOp(t, spec, memBackend(t), tuples, nil)
	// Windows: [-50,50): 50 tuples, [0,100): 100, [50,150): 50.
	if len(got["k"]) != 3 {
		t.Fatalf("emissions = %v", got["k"])
	}
	if got["k"][0] != "50" || got["k"][1] != "100" || got["k"][2] != "50" {
		t.Errorf("per-window counts = %v", got["k"])
	}
}

func TestSessionWindowMergingHolistic(t *testing.T) {
	spec := OperatorSpec{
		Assigner: window.SessionAssigner{Gap: 10},
		Holistic: listLenAgg,
	}
	// Key a: bursts at 0..2 and 20..22 (two sessions), then 40 bridging
	// nothing. Key b: 5,8,11 -> one session (gaps < 10).
	tuples := []Tuple{
		{Key: []byte("a"), TS: 0}, {Key: []byte("a"), TS: 2},
		{Key: []byte("b"), TS: 5}, {Key: []byte("b"), TS: 8},
		{Key: []byte("b"), TS: 11},
		{Key: []byte("a"), TS: 20}, {Key: []byte("a"), TS: 22},
	}
	got := collectOp(t, spec, memBackend(t), tuples, nil)
	sort.Strings(got["a"])
	if len(got["a"]) != 2 || got["a"][0] != "2" || got["a"][1] != "2" {
		t.Errorf("a sessions = %v, want [2 2]", got["a"])
	}
	if len(got["b"]) != 1 || got["b"][0] != "3" {
		t.Errorf("b sessions = %v, want [3]", got["b"])
	}
}

func TestSessionWindowBridgeMergesState(t *testing.T) {
	// Two separate sessions bridged by a later tuple must fire once with
	// all tuples (holistic) or the merged accumulator (incremental).
	tuples := []Tuple{
		{Key: []byte("k"), TS: 0},
		{Key: []byte("k"), TS: 30},
		{Key: []byte("k"), TS: 15}, // bridges [0,10) and [30,40) via [15,25)... gap 20
	}
	specH := OperatorSpec{Assigner: window.SessionAssigner{Gap: 20}, Holistic: listLenAgg}
	got := collectOp(t, specH, memBackend(t), tuples, nil)
	if len(got["k"]) != 1 || got["k"][0] != "3" {
		t.Errorf("holistic bridge = %v, want [3]", got["k"])
	}
	specI := OperatorSpec{
		Assigner: window.SessionAssigner{Gap: 20},
		Incremental: IncrementalFunc{AddFunc: countAgg.AddFunc, MergeFunc: countAgg.MergeFunc,
			ResultFunc: func(acc []byte) []byte {
				return []byte(strconv.FormatUint(binary.LittleEndian.Uint64(acc), 10))
			}},
	}
	got = collectOp(t, specI, memBackend(t), tuples, nil)
	if len(got["k"]) != 1 || got["k"][0] != "3" {
		t.Errorf("incremental bridge = %v, want [3]", got["k"])
	}
}

func TestSessionFiresOnWatermark(t *testing.T) {
	spec := OperatorSpec{Assigner: window.SessionAssigner{Gap: 10}, Holistic: listLenAgg}
	backend := memBackend(t)
	var emissions []Tuple
	op, err := NewWindowOperator(spec, backend, func(out Tuple) { emissions = append(emissions, out) })
	if err != nil {
		t.Fatal(err)
	}
	op.OnTuple(Tuple{Key: []byte("k"), TS: 0})
	op.OnWatermark(5, 0) // session open until 10
	if len(emissions) != 0 {
		t.Fatal("fired before gap expired")
	}
	op.OnWatermark(10, 0)
	if len(emissions) != 1 {
		t.Fatalf("emissions = %d, want 1 at watermark >= end", len(emissions))
	}
	if emissions[0].TS != 9 {
		t.Errorf("result TS = %d, want 9 (end-1)", emissions[0].TS)
	}
	backend.Destroy()
}

func TestCountWindows(t *testing.T) {
	spec := OperatorSpec{Assigner: window.CountAssigner{Size: 3}, Holistic: listLenAgg}
	var tuples []Tuple
	for i := 0; i < 8; i++ { // 2 full windows of 3, one partial of 2
		tuples = append(tuples, Tuple{Key: []byte("k"), TS: int64(i)})
	}
	got := collectOp(t, spec, memBackend(t), tuples, nil)
	if len(got["k"]) != 3 || got["k"][0] != "3" || got["k"][1] != "3" || got["k"][2] != "2" {
		t.Errorf("count windows = %v, want [3 3 2]", got["k"])
	}
}

func TestGlobalWindow(t *testing.T) {
	spec := OperatorSpec{
		Assigner: window.GlobalAssigner{},
		Incremental: IncrementalFunc{AddFunc: countAgg.AddFunc, MergeFunc: countAgg.MergeFunc,
			ResultFunc: func(acc []byte) []byte {
				return []byte(strconv.FormatUint(binary.LittleEndian.Uint64(acc), 10))
			}},
	}
	var tuples []Tuple
	for i := 0; i < 1000; i++ {
		tuples = append(tuples, Tuple{Key: []byte(fmt.Sprintf("k%d", i%4)), TS: int64(i)})
	}
	got := collectOp(t, spec, memBackend(t), tuples, []int64{500})
	for i := 0; i < 4; i++ {
		k := fmt.Sprintf("k%d", i)
		if len(got[k]) != 1 || got[k][0] != "250" {
			t.Errorf("%s = %v, want [250] at end of stream", k, got[k])
		}
	}
}

func TestCustomWindows(t *testing.T) {
	// A custom assigner mimicking fixed windows; classified unaligned.
	spec := OperatorSpec{
		Assigner: window.CustomAssigner{AssignFunc: func(ts int64) []window.Window {
			start := ts / 50 * 50
			return []window.Window{{Start: start, End: start + 50}}
		}},
		Holistic: listLenAgg,
	}
	var tuples []Tuple
	for i := 0; i < 100; i++ {
		tuples = append(tuples, Tuple{Key: []byte("k"), TS: int64(i)})
	}
	got := collectOp(t, spec, memBackend(t), tuples, []int64{50})
	if len(got["k"]) != 2 || got["k"][0] != "50" || got["k"][1] != "50" {
		t.Errorf("custom windows = %v", got["k"])
	}
}

func TestLateTuplesDropped(t *testing.T) {
	spec := OperatorSpec{Assigner: window.FixedAssigner{Size: 100}, Holistic: listLenAgg}
	backend := memBackend(t)
	var emitted int
	op, _ := NewWindowOperator(spec, backend, func(Tuple) { emitted++ })
	op.OnTuple(Tuple{Key: []byte("k"), TS: 10})
	op.OnWatermark(150, 0) // window [0,100) fires
	if emitted != 1 {
		t.Fatalf("emitted = %d", emitted)
	}
	op.OnTuple(Tuple{Key: []byte("k"), TS: 20}) // late for [0,100)
	if st := op.Stats(); st.LateDropped != 1 {
		t.Errorf("LateDropped = %d", st.LateDropped)
	}
	op.Finish(0)
	if emitted != 1 {
		t.Errorf("late tuple produced output")
	}
	backend.Destroy()
}

func TestSpecValidation(t *testing.T) {
	bad := []OperatorSpec{
		{},
		{Assigner: window.FixedAssigner{Size: 1}},
		{Assigner: window.FixedAssigner{Size: 1}, Holistic: listLenAgg, Incremental: countAgg},
	}
	for i, spec := range bad {
		if _, err := NewWindowOperator(spec, nil, nil); err == nil {
			t.Errorf("spec %d should be rejected", i)
		}
	}
}

// TestOperatorAcrossAllBackends runs the same fixed-window workload over
// every backend and requires identical results — the SPE-side proof that
// the adapters are interchangeable.
func TestOperatorAcrossAllBackends(t *testing.T) {
	workload := func() []Tuple {
		var tuples []Tuple
		for i := 0; i < 2000; i++ {
			tuples = append(tuples, Tuple{
				Key:   []byte(fmt.Sprintf("key-%02d", i%10)),
				Value: []byte(fmt.Sprintf("v%04d", i)),
				TS:    int64(i),
			})
		}
		return tuples
	}
	for _, holistic := range []bool{true, false} {
		var reference map[string][]string
		for _, kind := range statebackend.Kinds() {
			name := fmt.Sprintf("holistic=%v/%s", holistic, kind)
			t.Run(name, func(t *testing.T) {
				agg := core.AggIncremental
				if holistic {
					agg = core.AggHolistic
				}
				backend, err := statebackend.Open(statebackend.Config{
					Kind:       kind,
					Dir:        filepath.Join(t.TempDir(), string(kind)),
					Agg:        agg,
					WindowKind: window.Fixed,
					Assigner:   window.FixedAssigner{Size: 500},
				})
				if err != nil {
					t.Fatal(err)
				}
				spec := OperatorSpec{Assigner: window.FixedAssigner{Size: 500}}
				if holistic {
					spec.Holistic = listLenAgg
				} else {
					spec.Incremental = IncrementalFunc{AddFunc: countAgg.AddFunc, MergeFunc: countAgg.MergeFunc,
						ResultFunc: func(acc []byte) []byte {
							return []byte(strconv.FormatUint(binary.LittleEndian.Uint64(acc), 10))
						}}
				}
				got := collectOp(t, spec, backend, workload(), []int64{500, 1000, 1500})
				if reference == nil {
					reference = got
					// Sanity: 10 keys × 4 windows × 50 tuples.
					if len(got) != 10 {
						t.Fatalf("reference has %d keys", len(got))
					}
					for k, vs := range got {
						if len(vs) != 4 {
							t.Fatalf("%s: %v", k, vs)
						}
						for _, v := range vs {
							if v != "50" {
								t.Fatalf("%s: %v", k, vs)
							}
						}
					}
					return
				}
				if len(got) != len(reference) {
					t.Fatalf("keys = %d, reference %d", len(got), len(reference))
				}
				for k, want := range reference {
					if len(got[k]) != len(want) {
						t.Fatalf("%s: %v want %v", k, got[k], want)
					}
					for i := range want {
						if got[k][i] != want[i] {
							t.Fatalf("%s[%d]: %q want %q", k, i, got[k][i], want[i])
						}
					}
				}
			})
		}
	}
}

func TestPipelineSingleStage(t *testing.T) {
	pipe := &Pipeline{
		Stages: []Stage{{
			Name:        "count",
			Parallelism: 4,
			Window: &OperatorSpec{
				Assigner: window.FixedAssigner{Size: 100},
				Incremental: IncrementalFunc{AddFunc: countAgg.AddFunc, MergeFunc: countAgg.MergeFunc,
					ResultFunc: func(acc []byte) []byte {
						return []byte(strconv.FormatUint(binary.LittleEndian.Uint64(acc), 10))
					}},
			},
			NewBackend: func(int) (statebackend.Backend, error) {
				return statebackend.Open(statebackend.Config{Kind: statebackend.KindInMem})
			},
		}},
		WatermarkEvery: 50,
	}
	var mu sync.Mutex
	results := make(map[string]int)
	source := func(emit func(Tuple)) {
		for i := 0; i < 10000; i++ {
			emit(Tuple{Key: []byte(fmt.Sprintf("key-%03d", i%100)), TS: int64(i)})
		}
	}
	res, err := Run(pipe, source, func(t Tuple) {
		mu.Lock()
		results[string(t.Key)]++
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TuplesIn != 10000 {
		t.Errorf("TuplesIn = %d", res.TuplesIn)
	}
	// 100 keys x 100 windows of [i*100,(i+1)*100): each window holds one
	// tuple per key per window... 10000 tuples / 100 keys = 100 per key,
	// spread over 100 windows of size 100 (1 tuple each per key).
	if len(results) != 100 {
		t.Fatalf("result keys = %d", len(results))
	}
	for k, n := range results {
		if n != 100 {
			t.Errorf("%s emitted %d windows, want 100", k, n)
		}
	}
	if res.Results != 10000 {
		t.Errorf("Results = %d", res.Results)
	}
	if res.ThroughputTPS <= 0 || res.Latency.Count() == 0 {
		t.Error("missing throughput/latency measurements")
	}
}

func TestPipelineTwoWindowStages(t *testing.T) {
	// Stage 1: per-key count in fixed windows. Stage 2: global per-window
	// max via a map stage rekeying to the window, then a second window
	// stage picking the max count.
	mkBackend := func(int) (statebackend.Backend, error) {
		return statebackend.Open(statebackend.Config{Kind: statebackend.KindInMem})
	}
	pipe := &Pipeline{
		Stages: []Stage{
			{
				Name:        "count-per-key",
				Parallelism: 2,
				Window: &OperatorSpec{
					Assigner: window.FixedAssigner{Size: 100},
					Incremental: IncrementalFunc{AddFunc: countAgg.AddFunc, MergeFunc: countAgg.MergeFunc,
						ResultFunc: func(acc []byte) []byte {
							return []byte(strconv.FormatUint(binary.LittleEndian.Uint64(acc), 10))
						}},
				},
				NewBackend: mkBackend,
			},
			{
				Name:        "rekey",
				Parallelism: 1,
				Map: func(t Tuple, emit func(Tuple)) {
					emit(Tuple{Key: []byte("all"), Value: t.Value, TS: t.TS, WallNS: t.WallNS})
				},
			},
			{
				Name:        "max",
				Parallelism: 2,
				Window: &OperatorSpec{
					Assigner: window.FixedAssigner{Size: 100},
					Incremental: IncrementalFunc{
						AddFunc: func(acc []byte, t Tuple) []byte {
							cur, _ := strconv.Atoi(string(t.Value))
							if acc != nil {
								if old, _ := strconv.Atoi(string(acc)); old > cur {
									cur = old
								}
							}
							return []byte(strconv.Itoa(cur))
						},
						MergeFunc: func(a, b []byte) []byte {
							x, _ := strconv.Atoi(string(a))
							y, _ := strconv.Atoi(string(b))
							if y > x {
								x = y
							}
							return []byte(strconv.Itoa(x))
						},
					},
				},
				NewBackend: mkBackend,
			},
		},
		WatermarkEvery: 25,
	}
	// Key k0 appears 3x per window, k1..k4 once.
	source := func(emit func(Tuple)) {
		for w := 0; w < 20; w++ {
			base := int64(w * 100)
			for i := 0; i < 5; i++ {
				emit(Tuple{Key: []byte(fmt.Sprintf("k%d", i)), TS: base + int64(i)})
			}
			emit(Tuple{Key: []byte("k0"), TS: base + 50})
			emit(Tuple{Key: []byte("k0"), TS: base + 51})
		}
	}
	var mu sync.Mutex
	var maxes []string
	res, err := Run(pipe, source, func(t Tuple) {
		mu.Lock()
		maxes = append(maxes, string(t.Value))
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TuplesIn != 140 {
		t.Errorf("TuplesIn = %d", res.TuplesIn)
	}
	if len(maxes) != 20 {
		t.Fatalf("final maxes = %v", maxes)
	}
	for _, m := range maxes {
		if m != "3" {
			t.Fatalf("window max = %v, want 3 (k0's count)", maxes)
		}
	}
}

func TestPipelineErrorsPropagate(t *testing.T) {
	pipe := &Pipeline{Stages: []Stage{}}
	if _, err := Run(pipe, func(func(Tuple)) {}, nil); err == nil {
		t.Error("empty pipeline should fail")
	}
}

func TestRouteKeyStable(t *testing.T) {
	for par := 1; par <= 8; par++ {
		a := routeKey([]byte("some-key"), par)
		b := routeKey([]byte("some-key"), par)
		if a != b || a < 0 || a >= par {
			t.Fatalf("routeKey unstable or out of range: %d/%d par=%d", a, b, par)
		}
	}
}

func TestCustomWindowProfilerFeedsAdaptivePredictor(t *testing.T) {
	// A custom session-like window (fixed 100ms extension) with a shared
	// AdaptivePredictor: the operator reports triggers, the predictor
	// learns the lag, and a FlowKV backend using it starts prefetching.
	profiler := &window.AdaptivePredictor{MinSamples: 8}
	assigner := window.CustomAssigner{AssignFunc: func(ts int64) []window.Window {
		start := ts / 100 * 100
		return []window.Window{{Start: start, End: start + 100}}
	}}
	backend, err := statebackend.Open(statebackend.Config{
		Kind:       statebackend.KindFlowKV,
		Dir:        filepath.Join(t.TempDir(), "custom"),
		Agg:        core.AggHolistic,
		WindowKind: window.Custom,
		Assigner:   assigner,
		FlowKV: core.Options{
			WriteBufferBytes: 1 << 10, // force the disk path
			Predictor:        profiler,
			Instances:        1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := OperatorSpec{
		Assigner: assigner,
		Holistic: listLenAgg,
		Profiler: profiler,
	}
	var results int
	op, err := NewWindowOperator(spec, backend, func(Tuple) { results++ })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4000; i++ {
		key := fmt.Sprintf("k%02d", i%32)
		ts := int64(i)
		if err := op.OnTuple(Tuple{Key: []byte(key), Value: make([]byte, 40), TS: ts}); err != nil {
			t.Fatal(err)
		}
		if i%50 == 49 {
			if err := op.OnWatermark(ts, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := op.Finish(0); err != nil {
		t.Fatal(err)
	}
	if profiler.Samples() == 0 {
		t.Fatal("operator never reported triggers to the profiler")
	}
	if _, ok := profiler.ETT(window.Window{Start: 0, End: 100}, 50); !ok {
		t.Fatal("profiler did not warm up")
	}
	st, _ := statebackend.FlowKVStats(backend)
	if st.Hits == 0 {
		t.Errorf("no prefetch hits despite learned ETTs (misses=%d)", st.Misses)
	}
	if results == 0 {
		t.Fatal("no results")
	}
	backend.Destroy()
}

// failingBackend injects an error after N operations to exercise the
// pipeline's failure propagation.
type failingBackend struct {
	statebackend.Backend
	remaining int
}

func (f *failingBackend) Append(key, value []byte, w window.Window, ts int64) error {
	if f.remaining--; f.remaining < 0 {
		return fmt.Errorf("injected backend failure")
	}
	return f.Backend.Append(key, value, w, ts)
}

func TestPipelinePropagatesBackendFailure(t *testing.T) {
	pipe := &Pipeline{
		Stages: []Stage{{
			Name:        "w",
			Parallelism: 2,
			Window:      &OperatorSpec{Assigner: window.FixedAssigner{Size: 100}, Holistic: listLenAgg},
			NewBackend: func(int) (statebackend.Backend, error) {
				return &failingBackend{Backend: memBackend(t), remaining: 10}, nil
			},
		}},
	}
	source := func(emit func(Tuple)) {
		for i := 0; i < 1000; i++ {
			emit(Tuple{Key: []byte(fmt.Sprintf("k%d", i)), TS: int64(i)})
		}
	}
	res, err := Run(pipe, source, nil)
	if err == nil {
		t.Fatal("backend failure not propagated")
	}
	if res == nil || res.Err == nil {
		t.Fatal("result missing error")
	}
}

func TestPipelineBackendConstructionFailure(t *testing.T) {
	pipe := &Pipeline{
		Stages: []Stage{{
			Name:        "w",
			Parallelism: 1,
			Window:      &OperatorSpec{Assigner: window.FixedAssigner{Size: 100}, Holistic: listLenAgg},
			NewBackend: func(int) (statebackend.Backend, error) {
				return nil, fmt.Errorf("no disk")
			},
		}},
	}
	if _, err := Run(pipe, func(func(Tuple)) {}, nil); err == nil {
		t.Fatal("backend construction failure not propagated")
	}
}

func TestMapOnlyPipeline(t *testing.T) {
	pipe := &Pipeline{
		Stages: []Stage{{
			Name: "double",
			Map: func(tp Tuple, emit func(Tuple)) {
				emit(tp)
				emit(tp)
			},
		}},
	}
	var n int
	var mu sync.Mutex
	res, err := Run(pipe, func(emit func(Tuple)) {
		for i := 0; i < 100; i++ {
			emit(Tuple{Key: []byte("k"), TS: int64(i)})
		}
	}, func(Tuple) { mu.Lock(); n++; mu.Unlock() })
	if err != nil {
		t.Fatal(err)
	}
	if n != 200 || res.Results != 200 {
		t.Fatalf("map-only results = %d/%d", n, res.Results)
	}
}

func TestEmptySourcePipeline(t *testing.T) {
	pipe := &Pipeline{
		Stages: []Stage{{
			Name:   "w",
			Window: &OperatorSpec{Assigner: window.FixedAssigner{Size: 100}, Holistic: listLenAgg},
			NewBackend: func(int) (statebackend.Backend, error) {
				return statebackend.Open(statebackend.Config{Kind: statebackend.KindInMem})
			},
		}},
	}
	res, err := Run(pipe, func(func(Tuple)) {}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.TuplesIn != 0 || res.Results != 0 {
		t.Fatalf("empty source: %d/%d", res.TuplesIn, res.Results)
	}
}

func TestOutOfOrderWithinWatermarkSlack(t *testing.T) {
	// Tuples may arrive out of order as long as they are not late
	// relative to the watermark; results must be identical to in-order.
	spec := OperatorSpec{Assigner: window.FixedAssigner{Size: 100}, Holistic: listLenAgg}
	tuples := []Tuple{
		{Key: []byte("k"), TS: 50},
		{Key: []byte("k"), TS: 10}, // out of order, not late
		{Key: []byte("k"), TS: 90},
		{Key: []byte("k"), TS: 30},
	}
	got := collectOp(t, spec, memBackend(t), tuples, nil)
	if len(got["k"]) != 1 || got["k"][0] != "4" {
		t.Fatalf("out-of-order window = %v", got)
	}
}
