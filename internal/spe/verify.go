package spe

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"

	"flowkv/internal/binio"
	"flowkv/internal/core"
	"flowkv/internal/faultfs"
)

// VerifyJobDir deep-verifies a job directory offline, without opening
// the job: the JOB progress record must decode, the committed generation
// must exist with every worker/shared checkpoint verifying against its
// MANIFEST (size and CRC32C of every file), each generation's GENMETA
// sidecar must decode and agree with its directory, and the committed
// prefix of the sink ledger must frame- and payload-decode end to end.
// Quarantined generations are failures too: the directory still holds
// detected rot an operator has not resolved. The first failure is
// returned; nil means every committed byte verified. A nil fsys means
// the real OS filesystem.
func VerifyJobDir(fsys faultfs.FS, dir string) error {
	if fsys == nil {
		fsys = faultfs.OS
	}
	meta, err := ReadJobMeta(fsys, dir)
	if err != nil {
		return err
	}
	gens, err := ListGenerations(fsys, dir)
	if err != nil {
		return err
	}
	tipSeen := false
	for _, g := range gens {
		gdir := filepath.Join(dir, genDirName(g))
		if g > meta.Gen {
			// Debris from a crash mid-commit: never committed, removed
			// by the next Resume. A partial checkpoint here is expected,
			// not corruption of anything the job promised to keep.
			continue
		}
		if g == meta.Gen {
			tipSeen = true
		}
		if reason, ok := core.QuarantineReason(fsys, gdir); ok {
			return fmt.Errorf("spe: verify %s: generation %d quarantined: %s", dir, g, reason)
		}
		ents, err := fsys.ReadDir(gdir)
		if err != nil {
			return fmt.Errorf("spe: verify %s: %w", dir, err)
		}
		stages := 0
		for _, e := range ents {
			if !e.IsDir() {
				continue
			}
			if _, _, err := core.VerifyCheckpointDir(fsys, filepath.Join(gdir, e.Name())); err != nil {
				return fmt.Errorf("spe: verify %s: generation %d: %w", dir, g, err)
			}
			stages++
		}
		if g == meta.Gen && stages == 0 {
			return fmt.Errorf("spe: verify %s: committed generation %d holds no checkpoints", dir, g)
		}
		if b, rerr := fsys.ReadFile(filepath.Join(gdir, genMetaName)); rerr == nil {
			gm, derr := decodeJobMeta(b)
			if derr != nil {
				return fmt.Errorf("spe: verify %s: generation %d GENMETA: %w", dir, g, derr)
			}
			if gm.Gen != g {
				return fmt.Errorf("spe: verify %s: generation %d GENMETA names generation %d", dir, g, gm.Gen)
			}
		} else if !errors.Is(rerr, fs.ErrNotExist) {
			return fmt.Errorf("spe: verify %s: generation %d GENMETA: %w", dir, g, rerr)
		}
	}
	if !tipSeen {
		return fmt.Errorf("spe: verify %s: committed generation %d is missing", dir, meta.Gen)
	}
	if err := verifyRouting(dir, meta); err != nil {
		return err
	}
	return verifyLedger(fsys, dir, meta)
}

// verifyRouting checks the committed routing tables for internal
// consistency: a stage's table must be sized to its committed
// parallelism (when both are recorded) and every bucket must name a
// worker inside that parallelism. Rot in the JOB record usually fails
// the record CRC first; this catches a decodable-but-nonsensical
// table before a resume routes keys to a worker that does not exist.
func verifyRouting(dir string, meta JobMeta) error {
	for si, tab := range meta.Routing {
		if tab == nil {
			continue
		}
		par := int64(len(tab))
		if si < len(meta.StagePars) && meta.StagePars[si] > 0 {
			par = meta.StagePars[si]
			if int64(len(tab)) != par {
				return fmt.Errorf("spe: verify %s: stage %d routing table has %d buckets for parallelism %d",
					dir, si, len(tab), par)
			}
		}
		for b, w := range tab {
			if w < 0 || w >= par {
				return fmt.Errorf("spe: verify %s: stage %d routes bucket %d to worker %d of %d",
					dir, si, b, w, par)
			}
		}
	}
	return nil
}

// verifyLedger decodes the committed prefix of the sink ledger record by
// record. Payloads are decoded too, not just frame CRCs: an all-zero rot
// page happens to satisfy the legacy v0 framing (CRC32C of the empty
// payload is zero), but an empty payload can never decode as a sink
// record. Bytes past the committed length are an uncommitted suffix that
// the next resume discards, so they are not verified.
func verifyLedger(fsys faultfs.FS, dir string, meta JobMeta) error {
	b, err := fsys.ReadFile(filepath.Join(dir, ledgerName))
	if errors.Is(err, fs.ErrNotExist) {
		b = nil
	} else if err != nil {
		return fmt.Errorf("spe: verify %s: ledger: %w", dir, err)
	}
	if meta.LedgerLen > int64(len(b)) {
		return fmt.Errorf("spe: verify %s: ledger is %d bytes, JOB commits %d", dir, len(b), meta.LedgerLen)
	}
	sc := binio.NewRecordScanner(bytes.NewReader(b[:meta.LedgerLen]), 0)
	for sc.Scan() {
		d := snapDecoder{b: sc.Record()}
		d.varint()
		d.bytes()
		d.bytes()
		if d.err != nil {
			return fmt.Errorf("spe: verify %s: ledger record ending at offset %d: %w", dir, sc.Offset(), d.err)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("spe: verify %s: ledger: %w", dir, err)
	}
	if sc.Offset() != meta.LedgerLen {
		return fmt.Errorf("spe: verify %s: committed ledger ends mid-record at %d of %d", dir, sc.Offset(), meta.LedgerLen)
	}
	return nil
}
