package spe

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"flowkv/internal/core"
	"flowkv/internal/faultfs"
	"flowkv/internal/statebackend"
	"flowkv/internal/window"
)

// The progress watchdog battery: a worker wedged inside an operator (or
// a checkpoint snapshot wedged in a hung syscall) must not hang the run
// forever. Job.ProgressDeadline bounds barrier alignment and checkpoint
// snapshots; expiry halts the run with a typed *Halt wrapping
// ErrProgressStalled that names the stuck stage/worker, and the wedged
// goroutine is abandoned rather than joined.

// wedgePipeline builds a two-stage pipeline whose map stage parks on
// gate for every tuple of key k00 — a worker wedged in user code, the
// shape the store-level OpDeadline cannot see.
func wedgePipeline(t *testing.T, stateDir string, gate chan struct{}) *Pipeline {
	t.Helper()
	assigner := window.FixedAssigner{Size: 64}
	return &Pipeline{
		WatermarkEvery: 25,
		Stages: []Stage{
			{
				Name: "tag", Parallelism: 2,
				Map: func(tp Tuple, emit func(Tuple)) {
					if string(tp.Key) == "k00" {
						<-gate
					}
					emit(tp)
				},
			},
			{
				Name: "win", Parallelism: 2,
				Window: &OperatorSpec{Assigner: assigner, Holistic: crashHolistic},
				NewBackend: func(w int) (statebackend.Backend, error) {
					return statebackend.Open(statebackend.Config{
						Kind:       statebackend.KindFlowKV,
						Dir:        filepath.Join(stateDir, fmt.Sprintf("w%02d", w)),
						Agg:        core.AggHolistic,
						WindowKind: window.Fixed,
						Assigner:   assigner,
						FlowKV:     core.Options{Instances: 2, WriteBufferBytes: 1 << 20},
					})
				},
			},
		},
	}
}

// TestJobProgressWatchdogStuckMapWorker wedges a map-stage worker in
// user code. The barrier can never align, so the watchdog must expire,
// name that exact worker with its heartbeat count, and leave the job
// dir without a committed JOB record (nothing reached a commit point).
func TestJobProgressWatchdogStuckMapWorker(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate) // let the abandoned worker drain before process exit
	base := t.TempDir()
	job := &Job{
		Pipeline:         wedgePipeline(t, filepath.Join(base, "state"), gate),
		Source:           NewSliceSource(crashTuples(600)),
		Dir:              filepath.Join(base, "job"),
		CheckpointEvery:  8,
		ProgressDeadline: 150 * time.Millisecond,
	}
	start := time.Now()
	res, err := job.Run()
	if !errors.Is(err, ErrProgressStalled) {
		t.Fatalf("run error = %v, want ErrProgressStalled", err)
	}
	// The run must end promptly: one deadline for the barrier, one grace
	// for the abandon drain, plus slack — not a hang.
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("stalled run took %v to return", took)
	}
	h := res.Halted
	if h == nil {
		t.Fatal("no Halt latched for watchdog expiry")
	}
	if h.Stage != "tag" {
		t.Fatalf("Halt.Stage = %q, want the wedged map stage", h.Stage)
	}
	if !errors.Is(h.Err, ErrProgressStalled) {
		t.Fatalf("Halt.Err = %v, want ErrProgressStalled", h.Err)
	}
	if !strings.Contains(h.Err.Error(), "never reached the barrier") {
		t.Fatalf("Halt.Err = %v, want stuck-worker description", h.Err)
	}
	if res.Final {
		t.Fatal("stalled run reported Final")
	}
	if _, err := ReadJobMeta(nil, job.Dir); err == nil {
		t.Fatal("stalled run committed a JOB record before its first checkpoint")
	}
}

// TestJobProgressWatchdogNamesWindowWorker wedges a window-stage worker
// inside its holistic trigger: the Halt must name the window stage and
// carry the backend name, which is what lets a job manager route the
// stall into slot failover.
func TestJobProgressWatchdogNamesWindowWorker(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	base := t.TempDir()
	assigner := window.FixedAssigner{Size: 64}
	wedgeHolistic := HolisticFunc(func(key []byte, values [][]byte) []byte {
		if string(key) == "k00" {
			<-gate
		}
		return crashHolistic(key, values)
	})
	pipe := &Pipeline{
		WatermarkEvery: 25,
		Stages: []Stage{{
			Name: "win", Parallelism: 2,
			Window: &OperatorSpec{Assigner: assigner, Holistic: wedgeHolistic},
			NewBackend: func(w int) (statebackend.Backend, error) {
				return statebackend.Open(statebackend.Config{
					Kind:       statebackend.KindFlowKV,
					Dir:        filepath.Join(base, "state", fmt.Sprintf("w%02d", w)),
					Agg:        core.AggHolistic,
					WindowKind: window.Fixed,
					Assigner:   assigner,
					FlowKV:     core.Options{Instances: 2, WriteBufferBytes: 1 << 20},
				})
			},
		}},
	}
	job := &Job{
		Pipeline:         pipe,
		Source:           NewSliceSource(crashTuples(600)),
		Dir:              filepath.Join(base, "job"),
		CheckpointEvery:  200,
		ProgressDeadline: 150 * time.Millisecond,
	}
	res, err := job.Run()
	if !errors.Is(err, ErrProgressStalled) {
		t.Fatalf("run error = %v, want ErrProgressStalled", err)
	}
	h := res.Halted
	if h == nil {
		t.Fatal("no Halt latched for watchdog expiry")
	}
	if h.Stage != "win" {
		t.Fatalf("Halt.Stage = %q, want the wedged window stage", h.Stage)
	}
	if h.Backend == "" {
		t.Fatal("Halt.Backend empty — a manager cannot key failover on this stall")
	}
}

// TestJobProgressWatchdogStuckCheckpoint hangs the first filesystem
// operation of a checkpoint snapshot. The coordinator itself is the
// wedged party — no worker ever misses the barrier — so the
// checkpoint-side watchdog must abandon the snapshot at the deadline
// with a typed Halt naming the backend, without committing.
func TestJobProgressWatchdogStuckCheckpoint(t *testing.T) {
	// The hung op is never released: the abandoned snapshot goroutine
	// stays parked in the injector for the life of the process, exactly
	// like a thread wedged in a real hung syscall. Releasing it here
	// would have it resume writing checkpoint files while TempDir
	// cleanup deletes them.
	inj := faultfs.NewInjector(faultfs.OS)
	base := t.TempDir()
	pat := crashPatterns()[0] // AAR
	job := &Job{
		Pipeline:         crashPipeline(pat, filepath.Join(base, "state"), inj, 1<<20),
		Source:           NewSliceSource(crashTuples(600)),
		Dir:              filepath.Join(base, "job"),
		CheckpointEvery:  50,
		ProgressDeadline: 150 * time.Millisecond,
	}
	// Hang the first mutating op under a checkpoint generation dir: the
	// snapshot wedges exactly the way a checkpoint onto dying media does.
	inj.SetRule(faultfs.Rule{Class: faultfs.ClassOnce, Hang: true, PathContains: genPrefix})
	res, err := job.Run()
	if !errors.Is(err, ErrProgressStalled) {
		t.Fatalf("run error = %v, want ErrProgressStalled", err)
	}
	h := res.Halted
	if h == nil {
		t.Fatal("no Halt latched for checkpoint stall")
	}
	if h.Backend == "" {
		t.Fatal("Halt.Backend empty for a backend checkpoint stall")
	}
	if !strings.Contains(h.Err.Error(), "checkpoint snapshot") {
		t.Fatalf("Halt.Err = %v, want checkpoint-snapshot description", h.Err)
	}
	if _, err := ReadJobMeta(nil, job.Dir); err == nil {
		t.Fatal("stalled checkpoint still committed a JOB record")
	}
	if res.Checkpoints != 0 {
		t.Fatalf("Checkpoints = %d, want 0", res.Checkpoints)
	}
}

// TestJobProgressWatchdogCleanRunUnaffected proves the watchdog is
// inert on a healthy run: with a generous deadline armed, the job
// completes normally and its ledger matches the unwatched golden run
// byte for byte.
func TestJobProgressWatchdogCleanRunUnaffected(t *testing.T) {
	pat := crashPatterns()[0]
	tuples := crashTuples(600)
	golden := goldenLedger(t, pat, tuples, 50, 1<<20)

	base := t.TempDir()
	job := &Job{
		Pipeline:         crashPipeline(pat, filepath.Join(base, "state"), nil, 1<<20),
		Source:           NewSliceSource(tuples),
		Dir:              filepath.Join(base, "job"),
		CheckpointEvery:  50,
		ProgressDeadline: 30 * time.Second,
	}
	res, err := job.Run()
	if err != nil {
		t.Fatalf("watched run: %v", err)
	}
	if !res.Final {
		t.Fatal("watched run did not finish")
	}
	checkLedger(t, job.Dir, golden)
}
