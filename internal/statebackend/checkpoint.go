package statebackend

import "flowkv/internal/core"

// Checkpointer is the optional backend capability jobs require: a
// crash-consistent snapshot of the backend's durable state into a
// directory, carrying opaque application metadata (operator control
// state, source offsets) that commits atomically with the store cut.
// Only the FlowKV backend implements it today; jobs fail stages whose
// backends do not.
type Checkpointer interface {
	// CheckpointMeta writes a verified snapshot of the backend into dir
	// along with meta; the snapshot commits atomically (a crash leaves
	// either the previous checkpoint or the new one, never a blend).
	CheckpointMeta(dir string, meta []byte) error
	// RestoreMeta rebuilds the backend from a checkpoint directory and
	// returns the metadata it was taken with. The backend must be
	// freshly opened and empty.
	RestoreMeta(dir string) ([]byte, error)
}

// DeltaCheckpointer is the incremental refinement of Checkpointer: the
// snapshot into dir is priced against the checkpoint at parent — bytes
// the parent already persisted are hard-linked rather than rewritten,
// and the per-barrier fsyncs collapse into one group-commit window. An
// empty parent (or an unusable one — the fallback is always to full
// data) writes a full base. The resulting directory remains physically
// self-contained and restores through plain RestoreMeta.
type DeltaCheckpointer interface {
	Checkpointer
	// CheckpointDeltaMeta is CheckpointMeta diffed against parent.
	CheckpointDeltaMeta(dir, parent string, meta []byte) error
}

// CheckpointMeta implements Checkpointer over core.Store.
func (b *flowkvBackend) CheckpointMeta(dir string, meta []byte) error {
	return b.store.CheckpointWithMeta(dir, meta)
}

// CheckpointDeltaMeta implements DeltaCheckpointer over core.Store.
func (b *flowkvBackend) CheckpointDeltaMeta(dir, parent string, meta []byte) error {
	return b.store.CheckpointDelta(dir, parent, meta)
}

// RestoreMeta implements Checkpointer over core.Store.
func (b *flowkvBackend) RestoreMeta(dir string) ([]byte, error) {
	return b.store.RestoreWithMeta(dir)
}

// AsCheckpointer extracts the checkpoint capability from a backend,
// looking through wrappers (Synchronized, shared-stage worker views).
func AsCheckpointer(b Backend) (Checkpointer, bool) {
	for {
		if c, ok := b.(Checkpointer); ok {
			return c, true
		}
		u, ok := b.(Unwrapper)
		if !ok {
			return nil, false
		}
		b = u.Unwrap()
	}
}

// AsDeltaCheckpointer extracts the incremental-checkpoint capability,
// looking through wrappers like AsCheckpointer. Callers holding only a
// Checkpointer fall back to full snapshots.
func AsDeltaCheckpointer(b Backend) (DeltaCheckpointer, bool) {
	for {
		if c, ok := b.(DeltaCheckpointer); ok {
			return c, true
		}
		u, ok := b.(Unwrapper)
		if !ok {
			return nil, false
		}
		b = u.Unwrap()
	}
}

// StartSelfHeal starts a background recoverer on b's FlowKV store: a
// supervised loop that drives a Degraded store back to Healthy with
// exponential backoff (see core.SelfHealer). It reports ok=false for
// backend kinds without a degraded mode. The returned stop function must
// be called before the backend is closed.
func StartSelfHeal(b Backend, opts core.SelfHealOptions) (stop func(), ok bool) {
	fb, isFlowKV := unwrap(b).(*flowkvBackend)
	if !isFlowKV {
		return nil, false
	}
	h := fb.store.StartSelfHealer(opts)
	return h.Stop, true
}

var _ DeltaCheckpointer = (*flowkvBackend)(nil)
