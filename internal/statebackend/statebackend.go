// Package statebackend defines the uniform windowed-state interface the
// mini SPE uses, plus adapters binding it to the four stores evaluated in
// the paper: FlowKV, the LSM tree (RocksDB stand-in), the hash-log store
// (Faster stand-in), and the in-memory store.
//
// The adapters encode the (window, key) naming each store expects: FlowKV
// receives windows as first-class API arguments (its defining feature);
// the traditional KV stores receive a composite key — window boundary
// prefix + user key — exactly how SPEs bolt window state onto stores that
// were not built for it (§2.2: "the assigned window and the key of the
// tuple are used as the key for the KV stores").
package statebackend

import (
	"encoding/binary"
	"fmt"

	"flowkv/internal/core"
	"flowkv/internal/faster"
	"flowkv/internal/lsm"
	"flowkv/internal/memstore"
	"flowkv/internal/metrics"
	"flowkv/internal/window"
)

// Backend is the windowed-state interface used by the SPE's window
// operator. One Backend instance belongs to one physical operator; in the
// default one-worker-per-operator arrangement it is used from that
// worker's goroutine only. The FlowKV backend is safe for concurrent use
// (core.Store carries its own locks); the other kinds are not — wrap them
// with Synchronized before sharing across workers.
//
// Aggregate contract: GetAgg logically consumes the value — the caller
// must write it back with PutAgg after aggregating (FlowKV's RMW store
// removes on Get; other backends simply overwrite). TakeAgg consumes the
// value permanently (trigger time).
type Backend interface {
	// Name identifies the backend in experiment reports.
	Name() string

	// Append adds a tuple value to (key, window) state; ts is the tuple's
	// event timestamp (used by FlowKV's ETT estimation).
	Append(key, value []byte, w window.Window, ts int64) error
	// ReadAppended fetches and removes the appended values of (key, w).
	ReadAppended(key []byte, w window.Window) ([][]byte, error)
	// PeekAppended returns the appended values of (key, w) without
	// consuming them — the probe primitive for interval joins.
	PeekAppended(key []byte, w window.Window) ([][]byte, error)
	// ReadWindow drains every key of window w in one pass if the backend
	// supports bulk window reads; ok=false directs the caller to fall
	// back to per-key ReadAppended over its registered keys. The same
	// key may be emitted more than once (FlowKV's gradual loading); the
	// caller merges.
	ReadWindow(w window.Window, emit func(key []byte, values [][]byte) error) (ok bool, err error)
	// DropAppended discards (key, w) state unread.
	DropAppended(key []byte, w window.Window) error

	// GetAgg reads the aggregate of (key, w); see the contract above.
	GetAgg(key []byte, w window.Window) ([]byte, bool, error)
	// PutAgg writes the aggregate of (key, w).
	PutAgg(key []byte, w window.Window, agg []byte) error
	// TakeAgg fetches and removes the aggregate of (key, w).
	TakeAgg(key []byte, w window.Window) ([]byte, bool, error)

	// Flush spills buffered state to disk (checkpoint support).
	Flush() error
	// Close releases resources, leaving durable state in place.
	Close() error
	// Destroy releases resources and deletes durable state.
	Destroy() error
}

// Kind selects a backend implementation.
type Kind string

// Backend kinds, named as the paper's figures label them.
const (
	KindFlowKV  Kind = "flowkv"
	KindRocksDB Kind = "rocksdb" // the internal/lsm LSM tree
	KindFaster  Kind = "faster"  // the internal/faster hash log
	KindInMem   Kind = "inmem"
)

// Kinds lists all backend kinds in the order the paper plots them.
func Kinds() []Kind { return []Kind{KindInMem, KindFlowKV, KindRocksDB, KindFaster} }

// Config describes the backend for one physical operator worker.
type Config struct {
	// Kind selects the implementation.
	Kind Kind
	// Dir is the worker-private state directory (persistent kinds).
	Dir string
	// Agg and WindowKind describe the operator for FlowKV classification.
	Agg        core.AggKind
	WindowKind window.Kind
	// Assigner provides window semantics (FlowKV's ETT predictor).
	Assigner window.Assigner
	// FlowKV, LSM, Faster, Mem hold per-kind option overrides; Dir and
	// Breakdown are filled in from this Config.
	FlowKV core.Options
	LSM    lsm.Options
	Faster faster.Options
	Mem    memstore.Options
	// Breakdown receives store CPU-time and I/O accounting.
	Breakdown *metrics.Breakdown
}

// Open constructs the configured backend.
func Open(cfg Config) (Backend, error) {
	switch cfg.Kind {
	case KindFlowKV:
		opts := cfg.FlowKV
		opts.Dir = cfg.Dir
		opts.Assigner = cfg.Assigner
		opts.Breakdown = cfg.Breakdown
		st, err := core.Open(cfg.Agg, cfg.WindowKind, opts)
		if err != nil {
			return nil, err
		}
		return &flowkvBackend{store: st}, nil
	case KindRocksDB:
		opts := cfg.LSM
		opts.Dir = cfg.Dir
		opts.Breakdown = cfg.Breakdown
		if opts.MergeOperator == nil {
			opts.MergeOperator = lsm.AppendListOperator{}
		}
		db, err := lsm.Open(opts)
		if err != nil {
			return nil, err
		}
		return &lsmBackend{db: db}, nil
	case KindFaster:
		opts := cfg.Faster
		opts.Dir = cfg.Dir
		opts.Breakdown = cfg.Breakdown
		db, err := faster.Open(opts)
		if err != nil {
			return nil, err
		}
		return &fasterBackend{db: db}, nil
	case KindInMem:
		return memstore.Open(cfg.Mem), nil
	default:
		return nil, fmt.Errorf("statebackend: unknown kind %q", cfg.Kind)
	}
}

// encodeKW builds the composite key (window prefix + user key) used by
// the traditional KV backends. Boundaries are biased big-endian so byte
// order matches numeric order, making per-window prefix scans work.
func encodeKW(w window.Window, key []byte) []byte {
	b := make([]byte, 16, 16+len(key))
	binary.BigEndian.PutUint64(b[0:], uint64(w.Start)^(1<<63))
	binary.BigEndian.PutUint64(b[8:], uint64(w.End)^(1<<63))
	return append(b, key...)
}

// windowPrefixRange returns the [start, end) composite-key range covering
// every key of window w.
func windowPrefixRange(w window.Window) (start, end []byte) {
	start = encodeKW(w, nil)
	end = append([]byte(nil), start...)
	for i := len(end) - 1; i >= 0; i-- {
		end[i]++
		if end[i] != 0 {
			return start, end
		}
	}
	return start, nil // prefix of all 0xff: unbounded
}

// flowkvBackend adapts core.Store. Windows pass through as API arguments.
type flowkvBackend struct {
	store *core.Store
}

func (b *flowkvBackend) Name() string { return string(KindFlowKV) }

func (b *flowkvBackend) Append(key, value []byte, w window.Window, ts int64) error {
	return b.store.Append(key, value, w, ts)
}

func (b *flowkvBackend) ReadAppended(key []byte, w window.Window) ([][]byte, error) {
	return b.store.Get(key, w)
}

func (b *flowkvBackend) PeekAppended(key []byte, w window.Window) ([][]byte, error) {
	return b.store.Read(key, w)
}

func (b *flowkvBackend) ReadWindow(w window.Window, emit func(key []byte, values [][]byte) error) (bool, error) {
	if b.store.Pattern() != core.PatternAAR {
		return false, nil
	}
	for {
		part, err := b.store.GetWindow(w)
		if err != nil {
			return true, err
		}
		if part == nil {
			return true, nil
		}
		for _, kv := range part {
			if err := emit(kv.Key, kv.Values); err != nil {
				return true, err
			}
		}
	}
}

func (b *flowkvBackend) DropAppended(key []byte, w window.Window) error {
	if b.store.Pattern() == core.PatternAAR {
		return b.store.DropWindow(w)
	}
	return b.store.Drop(key, w)
}

func (b *flowkvBackend) GetAgg(key []byte, w window.Window) ([]byte, bool, error) {
	return b.store.GetAggregate(key, w)
}

func (b *flowkvBackend) PutAgg(key []byte, w window.Window, agg []byte) error {
	return b.store.PutAggregate(key, w, agg)
}

func (b *flowkvBackend) TakeAgg(key []byte, w window.Window) ([]byte, bool, error) {
	return b.store.GetAggregate(key, w)
}

func (b *flowkvBackend) Flush() error   { return b.store.Flush() }
func (b *flowkvBackend) Close() error   { return b.store.Close() }
func (b *flowkvBackend) Destroy() error { return b.store.Destroy() }

// Stats exposes FlowKV-specific metrics (prefetch hit ratio etc.).
func (b *flowkvBackend) Stats() core.Stats { return b.store.Stats() }

// Unwrapper is implemented by backend wrappers (Synchronized, the SPE's
// shared-stage worker views); Unwrap returns the next backend in the
// chain so capability probes reach the concrete store.
type Unwrapper interface{ Unwrap() Backend }

// unwrap follows the wrapper chain to the innermost backend.
func unwrap(b Backend) Backend {
	for {
		u, ok := b.(Unwrapper)
		if !ok {
			return b
		}
		b = u.Unwrap()
	}
}

// FlowKVStats extracts FlowKV store statistics from a backend (looking
// through wrappers), reporting ok=false for other kinds.
func FlowKVStats(b Backend) (core.Stats, bool) {
	fb, ok := unwrap(b).(*flowkvBackend)
	if !ok {
		return core.Stats{}, false
	}
	return fb.Stats(), true
}

// FlowKVHealth reports the FlowKV failure-handling state of b (looking
// through wrappers), with ok=false for other backend kinds (which have
// no degraded mode).
func FlowKVHealth(b Backend) (core.Health, bool) {
	fb, ok := unwrap(b).(*flowkvBackend)
	if !ok {
		return 0, false
	}
	return fb.store.Health(), true
}

// SubscribeHealth registers fn for health-transition notifications on
// b's FlowKV store (looking through wrappers), reporting ok=false for
// backend kinds without a health machine. The callback contract is
// core.Store.NotifyHealth's: synchronous, cheap, no re-entry. The
// reason classifies the departure from Healthy (error, stall, or
// latency) so subscribers can treat a slow slot differently from a
// broken one.
func SubscribeHealth(b Backend, fn func(core.Health, core.HealthReason, error)) bool {
	fb, ok := unwrap(b).(*flowkvBackend)
	if !ok {
		return false
	}
	fb.store.NotifyHealth(fn)
	return true
}

// PartitionedWindowReader is the optional capability behind shared-
// backend holistic aligned stages: read one window's state restricted to
// a key-ownership predicate, grouped by key, WITHOUT consuming the
// window, so several workers sharing one store can each drain their own
// key range and the window is dropped wholesale afterwards. Only the
// FlowKV backend over an AAR store provides it.
type PartitionedWindowReader interface {
	ReadWindowOwned(w window.Window, own func(key []byte) bool, emit func(key []byte, values [][]byte) error) error
}

func (b *flowkvBackend) ReadWindowOwned(w window.Window, own func(key []byte) bool, emit func(key []byte, values [][]byte) error) error {
	part, err := b.store.ReadWindowOwned(w, own)
	if err != nil {
		return err
	}
	for _, kv := range part {
		if err := emit(kv.Key, kv.Values); err != nil {
			return err
		}
	}
	return nil
}

// AsPartitionedWindowReader reports whether b (looking through wrappers)
// can serve partitioned non-consuming window reads.
func AsPartitionedWindowReader(b Backend) (PartitionedWindowReader, bool) {
	fb, ok := unwrap(b).(*flowkvBackend)
	if !ok || fb.store.Pattern() != core.PatternAAR {
		return nil, false
	}
	return fb, true
}

// lsmBackend adapts the LSM tree with composite keys, list-merge appends
// (lazy merging) and prefix scans for aligned window reads.
type lsmBackend struct {
	db *lsm.DB
}

func (b *lsmBackend) Name() string { return string(KindRocksDB) }

func (b *lsmBackend) Append(key, value []byte, w window.Window, _ int64) error {
	return b.db.Merge(encodeKW(w, key), value)
}

func (b *lsmBackend) ReadAppended(key []byte, w window.Window) ([][]byte, error) {
	ck := encodeKW(w, key)
	v, ok, err := b.db.Get(ck)
	if err != nil || !ok {
		return nil, err
	}
	vals, err := lsm.DecodeList(v)
	if err != nil {
		return nil, err
	}
	return vals, b.db.Delete(ck)
}

func (b *lsmBackend) PeekAppended(key []byte, w window.Window) ([][]byte, error) {
	v, ok, err := b.db.Get(encodeKW(w, key))
	if err != nil || !ok {
		return nil, err
	}
	return lsm.DecodeList(v)
}

func (b *lsmBackend) ReadWindow(w window.Window, emit func(key []byte, values [][]byte) error) (bool, error) {
	start, end := windowPrefixRange(w)
	it, err := b.db.Scan(start, end)
	if err != nil {
		return true, err
	}
	// The scan snapshot must be fully consumed before issuing deletes.
	type group struct {
		key  []byte
		vals [][]byte
	}
	var groups []group
	for ; it.Valid(); it.Next() {
		vals, err := lsm.DecodeList(it.Value())
		if err != nil {
			return true, err
		}
		groups = append(groups, group{key: append([]byte(nil), it.Key()...), vals: vals})
	}
	if err := it.Err(); err != nil {
		return true, err
	}
	for _, g := range groups {
		if err := emit(g.key[16:], g.vals); err != nil {
			return true, err
		}
		if err := b.db.Delete(g.key); err != nil {
			return true, err
		}
	}
	return true, nil
}

func (b *lsmBackend) DropAppended(key []byte, w window.Window) error {
	return b.db.Delete(encodeKW(w, key))
}

func (b *lsmBackend) GetAgg(key []byte, w window.Window) ([]byte, bool, error) {
	return b.db.Get(encodeKW(w, key))
}

func (b *lsmBackend) PutAgg(key []byte, w window.Window, agg []byte) error {
	return b.db.Put(encodeKW(w, key), agg)
}

func (b *lsmBackend) TakeAgg(key []byte, w window.Window) ([]byte, bool, error) {
	ck := encodeKW(w, key)
	v, ok, err := b.db.Get(ck)
	if err != nil || !ok {
		return nil, ok, err
	}
	return v, true, b.db.Delete(ck)
}

func (b *lsmBackend) Flush() error   { return b.db.Flush() }
func (b *lsmBackend) Close() error   { return b.db.Close() }
func (b *lsmBackend) Destroy() error { return b.db.Destroy() }

// fasterBackend adapts the hash-log store. Appends are read-copy-update
// (the store has no native append) and there is no ordered scan, so
// aligned window reads fall back to the operator's per-key loop.
type fasterBackend struct {
	db *faster.DB
}

func (b *fasterBackend) Name() string { return string(KindFaster) }

func (b *fasterBackend) Append(key, value []byte, w window.Window, _ int64) error {
	return b.db.AppendList(encodeKW(w, key), value)
}

func (b *fasterBackend) ReadAppended(key []byte, w window.Window) ([][]byte, error) {
	ck := encodeKW(w, key)
	v, ok, err := b.db.Read(ck)
	if err != nil || !ok {
		return nil, err
	}
	vals, err := faster.DecodeList(v)
	if err != nil {
		return nil, err
	}
	return vals, b.db.Delete(ck)
}

func (b *fasterBackend) PeekAppended(key []byte, w window.Window) ([][]byte, error) {
	v, ok, err := b.db.Read(encodeKW(w, key))
	if err != nil || !ok {
		return nil, err
	}
	return faster.DecodeList(v)
}

func (b *fasterBackend) ReadWindow(window.Window, func(key []byte, values [][]byte) error) (bool, error) {
	return false, nil // unsorted store: no per-window scan
}

func (b *fasterBackend) DropAppended(key []byte, w window.Window) error {
	return b.db.Delete(encodeKW(w, key))
}

func (b *fasterBackend) GetAgg(key []byte, w window.Window) ([]byte, bool, error) {
	return b.db.Read(encodeKW(w, key))
}

func (b *fasterBackend) PutAgg(key []byte, w window.Window, agg []byte) error {
	return b.db.Upsert(encodeKW(w, key), agg)
}

func (b *fasterBackend) TakeAgg(key []byte, w window.Window) ([]byte, bool, error) {
	ck := encodeKW(w, key)
	v, ok, err := b.db.Read(ck)
	if err != nil || !ok {
		return nil, ok, err
	}
	return v, true, b.db.Delete(ck)
}

func (b *fasterBackend) Flush() error   { return b.db.Flush() }
func (b *fasterBackend) Close() error   { return b.db.Close() }
func (b *fasterBackend) Destroy() error { return b.db.Destroy() }

// Interface checks.
var (
	_ Backend = (*flowkvBackend)(nil)
	_ Backend = (*lsmBackend)(nil)
	_ Backend = (*fasterBackend)(nil)
	_ Backend = (*memstore.Store)(nil)
)
