package statebackend

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"path/filepath"
	"sort"
	"testing"

	"flowkv/internal/core"
	"flowkv/internal/window"
)

// openAll opens one backend of each kind for an operator description and
// runs the test against each, proving the adapters are interchangeable.
func forEachBackend(t *testing.T, agg core.AggKind, wk window.Kind, a window.Assigner,
	fn func(t *testing.T, b Backend)) {
	t.Helper()
	for _, kind := range Kinds() {
		t.Run(string(kind), func(t *testing.T) {
			b, err := Open(Config{
				Kind:       kind,
				Dir:        filepath.Join(t.TempDir(), string(kind)),
				Agg:        agg,
				WindowKind: wk,
				Assigner:   a,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { b.Destroy() })
			fn(t, b)
		})
	}
}

func TestAppendReadAppendedAllBackends(t *testing.T) {
	forEachBackend(t, core.AggHolistic, window.Session, window.SessionAssigner{Gap: 100},
		func(t *testing.T, b Backend) {
			w := window.Window{Start: 0, End: 100}
			for i := 0; i < 20; i++ {
				if err := b.Append([]byte("k"), []byte(fmt.Sprintf("v%02d", i)), w, int64(i)); err != nil {
					t.Fatal(err)
				}
			}
			vals, err := b.ReadAppended([]byte("k"), w)
			if err != nil {
				t.Fatal(err)
			}
			if len(vals) != 20 {
				t.Fatalf("%d values", len(vals))
			}
			for i, v := range vals {
				if string(v) != fmt.Sprintf("v%02d", i) {
					t.Fatalf("value %d = %q: order violated", i, v)
				}
			}
			// Fetch & remove everywhere.
			vals, err = b.ReadAppended([]byte("k"), w)
			if err != nil || vals != nil {
				t.Fatalf("second read: %q %v", vals, err)
			}
		})
}

func TestAggAllBackends(t *testing.T) {
	forEachBackend(t, core.AggIncremental, window.Fixed, window.FixedAssigner{Size: 100},
		func(t *testing.T, b Backend) {
			w := window.Window{Start: 0, End: 100}
			key := []byte("counter")
			// The operator's RMW loop under the GetAgg/PutAgg contract.
			for i := 0; i < 100; i++ {
				var c uint64
				if agg, ok, err := b.GetAgg(key, w); err != nil {
					t.Fatal(err)
				} else if ok {
					c = binary.LittleEndian.Uint64(agg)
				}
				var buf [8]byte
				binary.LittleEndian.PutUint64(buf[:], c+1)
				if err := b.PutAgg(key, w, buf[:]); err != nil {
					t.Fatal(err)
				}
			}
			agg, ok, err := b.TakeAgg(key, w)
			if err != nil || !ok {
				t.Fatal(err)
			}
			if got := binary.LittleEndian.Uint64(agg); got != 100 {
				t.Fatalf("count = %d", got)
			}
			if _, ok, _ := b.TakeAgg(key, w); ok {
				t.Error("TakeAgg did not remove")
			}
		})
}

func TestReadWindowCapabilities(t *testing.T) {
	// Which backends support bulk window reads is a structural property:
	// sorted (rocksdb) and window-organized (flowkv AAR, inmem) stores
	// do; the unsorted hash log does not.
	wantBulk := map[Kind]bool{KindFlowKV: true, KindRocksDB: true, KindInMem: true, KindFaster: false}
	for _, kind := range Kinds() {
		t.Run(string(kind), func(t *testing.T) {
			b, err := Open(Config{
				Kind:       kind,
				Dir:        filepath.Join(t.TempDir(), string(kind)),
				Agg:        core.AggHolistic,
				WindowKind: window.Fixed,
				Assigner:   window.FixedAssigner{Size: 100},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer b.Destroy()
			w := window.Window{Start: 0, End: 100}
			other := window.Window{Start: 100, End: 200}
			for i := 0; i < 30; i++ {
				b.Append([]byte(fmt.Sprintf("key-%02d", i)), []byte(fmt.Sprintf("v%d", i)), w, 0)
			}
			b.Append([]byte("key-00"), []byte("other"), other, 100)

			got := map[string][]string{}
			ok, err := b.ReadWindow(w, func(key []byte, values [][]byte) error {
				for _, v := range values {
					got[string(key)] = append(got[string(key)], string(v))
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if ok != wantBulk[kind] {
				t.Fatalf("bulk support = %v, want %v", ok, wantBulk[kind])
			}
			if !ok {
				// Fallback path: per-key reads.
				for i := 0; i < 30; i++ {
					k := fmt.Sprintf("key-%02d", i)
					vals, err := b.ReadAppended([]byte(k), w)
					if err != nil {
						t.Fatal(err)
					}
					for _, v := range vals {
						got[k] = append(got[k], string(v))
					}
				}
			}
			if len(got) != 30 {
				t.Fatalf("drained %d keys", len(got))
			}
			var keys []string
			for k := range got {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for i, k := range keys {
				if len(got[k]) != 1 || got[k][0] != fmt.Sprintf("v%d", i) {
					t.Fatalf("%s = %v", k, got[k])
				}
			}
			// The other window's state must be intact; drain it via the
			// same bulk-or-fallback protocol the operator uses.
			got2 := map[string][]string{}
			ok, err = b.ReadWindow(other, func(key []byte, values [][]byte) error {
				for _, v := range values {
					got2[string(key)] = append(got2[string(key)], string(v))
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				vals, err := b.ReadAppended([]byte("key-00"), other)
				if err != nil {
					t.Fatal(err)
				}
				for _, v := range vals {
					got2["key-00"] = append(got2["key-00"], string(v))
				}
			}
			if len(got2) != 1 || len(got2["key-00"]) != 1 || got2["key-00"][0] != "other" {
				t.Fatalf("window isolation: %v", got2)
			}
		})
	}
}

func TestDropAppendedAllBackends(t *testing.T) {
	forEachBackend(t, core.AggHolistic, window.Session, window.SessionAssigner{Gap: 100},
		func(t *testing.T, b Backend) {
			w := window.Window{Start: 0, End: 100}
			b.Append([]byte("k"), []byte("v"), w, 0)
			if err := b.DropAppended([]byte("k"), w); err != nil {
				t.Fatal(err)
			}
			vals, err := b.ReadAppended([]byte("k"), w)
			if err != nil || vals != nil {
				t.Fatalf("dropped state: %q %v", vals, err)
			}
		})
}

func TestFlushAllBackends(t *testing.T) {
	forEachBackend(t, core.AggHolistic, window.Session, window.SessionAssigner{Gap: 100},
		func(t *testing.T, b Backend) {
			w := window.Window{Start: 0, End: 100}
			b.Append([]byte("k"), []byte("v"), w, 0)
			if err := b.Flush(); err != nil {
				t.Fatal(err)
			}
			vals, err := b.ReadAppended([]byte("k"), w)
			if err != nil || len(vals) != 1 {
				t.Fatalf("after flush: %q %v", vals, err)
			}
		})
}

func TestCompositeKeyEncoding(t *testing.T) {
	// Byte order must match numeric window order, including negatives.
	wins := []window.Window{
		{Start: -200, End: -100},
		{Start: -100, End: 0},
		{Start: 0, End: 100},
		{Start: 0, End: 200},
		{Start: 100, End: 200},
	}
	var prev []byte
	for _, w := range wins {
		cur := encodeKW(w, []byte("k"))
		if prev != nil && bytes.Compare(prev, cur) >= 0 {
			t.Fatalf("encoding not order-preserving at %v", w)
		}
		prev = cur
	}
}

func TestWindowPrefixRange(t *testing.T) {
	w := window.Window{Start: 100, End: 200}
	start, end := windowPrefixRange(w)
	inside := encodeKW(w, []byte("anykey"))
	if bytes.Compare(inside, start) < 0 || bytes.Compare(inside, end) >= 0 {
		t.Error("key of the window outside its prefix range")
	}
	outside := encodeKW(window.Window{Start: 100, End: 201}, []byte("anykey"))
	if bytes.Compare(outside, start) >= 0 && bytes.Compare(outside, end) < 0 {
		t.Error("key of another window inside the prefix range")
	}
}

func TestFlowKVStatsExtraction(t *testing.T) {
	b, err := Open(Config{
		Kind:       KindFlowKV,
		Dir:        filepath.Join(t.TempDir(), "f"),
		Agg:        core.AggHolistic,
		WindowKind: window.Session,
		Assigner:   window.SessionAssigner{Gap: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Destroy()
	if _, ok := FlowKVStats(b); !ok {
		t.Error("FlowKVStats should work on a FlowKV backend")
	}
	m, err := Open(Config{Kind: KindInMem})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Destroy()
	if _, ok := FlowKVStats(m); ok {
		t.Error("FlowKVStats on inmem should report false")
	}
}

func TestUnknownKind(t *testing.T) {
	if _, err := Open(Config{Kind: "bogus"}); err == nil {
		t.Error("unknown kind should fail")
	}
}

func TestPeekAppendedAllBackends(t *testing.T) {
	forEachBackend(t, core.AggHolistic, window.Custom, nil,
		func(t *testing.T, b Backend) {
			w := window.Window{Start: 0, End: 100}
			for i := 0; i < 5; i++ {
				if err := b.Append([]byte("k"), []byte(fmt.Sprintf("v%d", i)), w, int64(i)); err != nil {
					t.Fatal(err)
				}
			}
			// Peek twice: non-destructive, ordered.
			for round := 0; round < 2; round++ {
				vals, err := b.PeekAppended([]byte("k"), w)
				if err != nil {
					t.Fatal(err)
				}
				if len(vals) != 5 {
					t.Fatalf("round %d: %d values", round, len(vals))
				}
				for i, v := range vals {
					if string(v) != fmt.Sprintf("v%d", i) {
						t.Fatalf("round %d value %d = %q", round, i, v)
					}
				}
			}
			if vals, err := b.PeekAppended([]byte("missing"), w); err != nil || vals != nil {
				t.Fatalf("missing peek: %q %v", vals, err)
			}
			// Read still consumes afterwards.
			vals, err := b.ReadAppended([]byte("k"), w)
			if err != nil || len(vals) != 5 {
				t.Fatalf("consume after peek: %d %v", len(vals), err)
			}
			if vals, _ := b.PeekAppended([]byte("k"), w); vals != nil {
				t.Fatalf("peek after consume: %q", vals)
			}
		})
}
