package statebackend

import (
	"sync"

	"flowkv/internal/window"
)

// Synchronized wraps a backend with a single mutex, making it safe to
// share across operator workers. The FlowKV backend is returned as-is:
// core.Store is internally concurrent (per-instance locks, parallel
// fan-out), and serializing it from the outside would forfeit exactly the
// concurrency this repository measures. The wrapper exists for the
// baseline stores (LSM, hash-log, in-memory), whose single-owner designs
// mirror their real counterparts' per-worker embedding.
//
// ReadWindow holds the mutex across the whole drain, emit callbacks
// included, so bulk reads stay atomic with respect to other workers; the
// callback must not call back into the backend.
func Synchronized(b Backend) Backend {
	if _, ok := b.(*flowkvBackend); ok {
		return b
	}
	if _, ok := b.(*syncBackend); ok {
		return b
	}
	return &syncBackend{b: b}
}

type syncBackend struct {
	mu sync.Mutex
	b  Backend
}

func (s *syncBackend) Name() string { return s.b.Name() }

func (s *syncBackend) Append(key, value []byte, w window.Window, ts int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Append(key, value, w, ts)
}

func (s *syncBackend) ReadAppended(key []byte, w window.Window) ([][]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.ReadAppended(key, w)
}

func (s *syncBackend) PeekAppended(key []byte, w window.Window) ([][]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.PeekAppended(key, w)
}

func (s *syncBackend) ReadWindow(w window.Window, emit func(key []byte, values [][]byte) error) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.ReadWindow(w, emit)
}

func (s *syncBackend) DropAppended(key []byte, w window.Window) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.DropAppended(key, w)
}

func (s *syncBackend) GetAgg(key []byte, w window.Window) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.GetAgg(key, w)
}

func (s *syncBackend) PutAgg(key []byte, w window.Window, agg []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.PutAgg(key, w, agg)
}

func (s *syncBackend) TakeAgg(key []byte, w window.Window) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.TakeAgg(key, w)
}

func (s *syncBackend) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Flush()
}

func (s *syncBackend) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Close()
}

func (s *syncBackend) Destroy() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Destroy()
}

// Unwrap returns the wrapped backend (used by FlowKVStats-style probes).
func (s *syncBackend) Unwrap() Backend { return s.b }

var _ Backend = (*syncBackend)(nil)
