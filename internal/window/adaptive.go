package window

import "sort"

// AdaptivePredictor learns estimated trigger times for custom window
// functions by runtime profiling, the direction the paper's §8 leaves as
// future work ("leveraging runtime profiling to determine optimal stores
// and ETTs"). FlowKV normally cannot predict custom windows and degrades
// to on-demand reads; with a profiler the SPE reports every observed
// trigger and the predictor learns the distribution of the lag between a
// window's maximum tuple timestamp and its actual trigger time.
//
// Prediction uses a low quantile of the learned lags: an *under*-estimate
// of the trigger time is safe (the window is prefetched early and either
// hits or is evicted), whereas refusing to predict forfeits batching
// entirely. Until MinSamples triggers have been observed the predictor
// abstains, which FlowKV treats exactly like an unpredictable window.
//
// An AdaptivePredictor is owned by one worker (no locking), matching the
// stores it feeds.
type AdaptivePredictor struct {
	// MinSamples is the number of observed triggers required before
	// predictions start. Default 32.
	MinSamples int
	// Quantile is the lag quantile used for prediction, in [0, 1].
	// Default 0.1 (conservative: 90% of windows trigger at or after the
	// estimate).
	Quantile float64
	// WindowSize bounds the sliding sample reservoir. Default 1024.
	WindowSize int

	lags   []int64 // ring buffer of observed trigger-maxTS lags
	next   int
	filled bool
	sorted []int64
	dirty  bool
}

func (p *AdaptivePredictor) fill() {
	if p.MinSamples <= 0 {
		p.MinSamples = 32
	}
	if p.Quantile <= 0 || p.Quantile >= 1 {
		p.Quantile = 0.1
	}
	if p.WindowSize <= 0 {
		p.WindowSize = 1024
	}
	if p.lags == nil {
		p.lags = make([]int64, 0, p.WindowSize)
	}
}

// ObserveTrigger records one completed trigger: the window, the maximum
// tuple timestamp it held, and the event time at which it fired.
func (p *AdaptivePredictor) ObserveTrigger(_ Window, maxTS, triggeredAt int64) {
	p.fill()
	lag := triggeredAt - maxTS
	if len(p.lags) < p.WindowSize {
		p.lags = append(p.lags, lag)
	} else {
		p.lags[p.next] = lag
		p.next = (p.next + 1) % p.WindowSize
		p.filled = true
	}
	p.dirty = true
}

// Samples returns the number of triggers currently in the reservoir.
func (p *AdaptivePredictor) Samples() int { return len(p.lags) }

// ETT predicts maxTS plus the learned lag quantile; ok is false until
// enough triggers have been observed.
func (p *AdaptivePredictor) ETT(_ Window, maxTS int64) (int64, bool) {
	p.fill()
	if len(p.lags) < p.MinSamples {
		return 0, false
	}
	if p.dirty {
		p.sorted = append(p.sorted[:0], p.lags...)
		sort.Slice(p.sorted, func(i, j int) bool { return p.sorted[i] < p.sorted[j] })
		p.dirty = false
	}
	idx := int(p.Quantile * float64(len(p.sorted)))
	if idx >= len(p.sorted) {
		idx = len(p.sorted) - 1
	}
	return maxTS + p.sorted[idx], true
}

// Interface check.
var _ Predictor = (*AdaptivePredictor)(nil)
