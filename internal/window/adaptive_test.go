package window

import (
	"math/rand"
	"testing"
)

func TestAdaptivePredictorAbstainsUntilWarm(t *testing.T) {
	var p AdaptivePredictor
	if _, ok := p.ETT(Window{0, 10}, 5); ok {
		t.Fatal("cold predictor must abstain")
	}
	for i := 0; i < 31; i++ {
		p.ObserveTrigger(Window{}, int64(i), int64(i)+100)
	}
	if _, ok := p.ETT(Window{}, 0); ok {
		t.Fatal("predictor below MinSamples must abstain")
	}
	p.ObserveTrigger(Window{}, 31, 131)
	if _, ok := p.ETT(Window{}, 0); !ok {
		t.Fatal("predictor at MinSamples must predict")
	}
}

func TestAdaptivePredictorLearnsConstantLag(t *testing.T) {
	// A custom session-like window always triggers gap ms after its last
	// tuple; the profiler must learn exactly that.
	const gap = 250
	var p AdaptivePredictor
	for i := 0; i < 100; i++ {
		maxTS := int64(i * 13)
		p.ObserveTrigger(Window{}, maxTS, maxTS+gap)
	}
	ett, ok := p.ETT(Window{}, 1000)
	if !ok {
		t.Fatal("predictor should be warm")
	}
	if ett != 1000+gap {
		t.Fatalf("ETT = %d, want %d", ett, 1000+gap)
	}
}

func TestAdaptivePredictorIsConservative(t *testing.T) {
	// Noisy lags: the prediction must sit near the low end of the
	// distribution so that few windows trigger before their ETT.
	rng := rand.New(rand.NewSource(3))
	var p AdaptivePredictor
	lags := make([]int64, 0, 500)
	for i := 0; i < 500; i++ {
		lag := int64(100 + rng.Intn(900)) // lags in [100, 1000)
		lags = append(lags, lag)
		p.ObserveTrigger(Window{}, 0, lag)
	}
	ett, ok := p.ETT(Window{}, 0)
	if !ok {
		t.Fatal("warm")
	}
	var below int
	for _, l := range lags {
		if l < ett {
			below++
		}
	}
	frac := float64(below) / float64(len(lags))
	if frac > 0.15 {
		t.Errorf("%.0f%% of windows trigger before the ETT; want <=15%%", frac*100)
	}
	if ett < 100 {
		t.Errorf("ETT %d below the minimum lag: overly pessimistic", ett)
	}
}

func TestAdaptivePredictorSlidingWindow(t *testing.T) {
	// The reservoir forgets old behaviour: after a regime change the
	// prediction tracks the new lags.
	p := AdaptivePredictor{WindowSize: 64, MinSamples: 16}
	for i := 0; i < 64; i++ {
		p.ObserveTrigger(Window{}, 0, 1000)
	}
	for i := 0; i < 64; i++ { // regime change: lag drops to 10
		p.ObserveTrigger(Window{}, 0, 10)
	}
	ett, ok := p.ETT(Window{}, 0)
	if !ok || ett != 10 {
		t.Fatalf("ETT = %d,%v; want 10 after regime change", ett, ok)
	}
}

func TestAdaptivePredictorDefaults(t *testing.T) {
	var p AdaptivePredictor
	p.ObserveTrigger(Window{}, 0, 1)
	if p.MinSamples != 32 || p.Quantile != 0.1 || p.WindowSize != 1024 {
		t.Errorf("defaults = %d %f %d", p.MinSamples, p.Quantile, p.WindowSize)
	}
	if p.Samples() != 1 {
		t.Errorf("Samples = %d", p.Samples())
	}
}
