package window

import (
	"bytes"
	"testing"
)

// FuzzWindowDecode exercises the window boundary codec with arbitrary
// bytes. Every log entry in every store pattern embeds a window, so
// Decode sees raw disk contents on recovery: it must never panic, a
// successful decode must consume a positive number of bytes within the
// input (scanning loops rely on progress), and decode∘encode must be
// the identity — the encoding is canonical, and AUR's compaction
// compares identity prefixes byte-wise.
func FuzzWindowDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(Window{Start: 0, End: 100}.AppendTo(nil))
	f.Add(Window{Start: -1 << 62, End: 1<<62 - 1}.AppendTo(nil))
	f.Add(Window{Start: 1234567890, End: 1234567890}.AppendTo(nil))
	full := Window{Start: 42, End: 43}.AppendTo(nil)
	f.Add(full[:1])
	f.Add(append(full, 0xff))
	// Varint with a continuation bit on every byte: must be rejected.
	f.Add(bytes.Repeat([]byte{0x80}, 20))

	f.Fuzz(func(t *testing.T, b []byte) {
		w, n, err := Decode(b)
		if err != nil {
			return
		}
		if n <= 0 || n > len(b) {
			t.Fatalf("Decode consumed %d of %d bytes", n, len(b))
		}
		re := w.AppendTo(nil)
		w2, n2, err2 := Decode(re)
		if err2 != nil || n2 != len(re) || w2 != w {
			t.Fatalf("round trip: %v -> %v, n=%d/%d, err=%v", w, w2, n2, len(re), err2)
		}
	})
}
