// Package window implements the window model of the paper's §2.1: window
// boundaries, the standard window functions (fixed, sliding, session,
// count, global), session-window merging, and the estimated-trigger-time
// (ETT) predictors that drive FlowKV's predictive batch read (§4.2).
//
// All times are event-time milliseconds, as produced by the stream
// sources; windows are half-open intervals [Start, End).
package window

import (
	"fmt"
	"math"

	"flowkv/internal/binio"
)

// MaxTime is the largest representable event time; a global window spans
// [0, MaxTime).
const MaxTime = math.MaxInt64

// Window is a half-open event-time interval [Start, End). Windows are
// value types and are used directly as map keys throughout FlowKV's
// write buffers, which is the paper's "hash by window boundary" design.
type Window struct {
	Start int64 // inclusive, event-time milliseconds
	End   int64 // exclusive, event-time milliseconds
}

// Span returns the window length in milliseconds.
func (w Window) Span() int64 { return w.End - w.Start }

// Contains reports whether event time t falls inside the window.
func (w Window) Contains(t int64) bool { return t >= w.Start && t < w.End }

// Overlaps reports whether two windows intersect.
func (w Window) Overlaps(o Window) bool { return w.Start < o.End && o.Start < w.End }

// Cover returns the smallest window containing both w and o, the merge
// step for session windows.
func (w Window) Cover(o Window) Window {
	c := w
	if o.Start < c.Start {
		c.Start = o.Start
	}
	if o.End > c.End {
		c.End = o.End
	}
	return c
}

// Before reports whether w orders before o by (Start, End).
func (w Window) Before(o Window) bool {
	if w.Start != o.Start {
		return w.Start < o.Start
	}
	return w.End < o.End
}

// String renders the window for logs and error messages.
func (w Window) String() string { return fmt.Sprintf("[%d,%d)", w.Start, w.End) }

// AppendTo serializes the window boundary onto dst as two varints.
func (w Window) AppendTo(dst []byte) []byte {
	dst = binio.PutVarint(dst, w.Start)
	return binio.PutVarint(dst, w.End)
}

// Decode parses a window from the front of b, returning the window and
// bytes consumed.
func Decode(b []byte) (Window, int, error) {
	start, n1, err := binio.Varint(b)
	if err != nil {
		return Window{}, 0, err
	}
	end, n2, err := binio.Varint(b[n1:])
	if err != nil {
		return Window{}, 0, err
	}
	return Window{Start: start, End: end}, n1 + n2, nil
}

// Kind identifies a window function. The paper's store-pattern
// classification (§3.1) depends only on this and on the aggregate
// function's interface.
type Kind int

// Window function kinds.
const (
	Fixed   Kind = iota // tumbling windows of equal size
	Sliding             // overlapping windows: size + slide interval
	Session             // per-key gap-delimited windows
	Count               // per-key windows of N elements
	Global              // one window covering the whole stream
	Custom              // user-defined; semantics unknown to FlowKV
)

// String returns the window-function name.
func (k Kind) String() string {
	switch k {
	case Fixed:
		return "fixed"
	case Sliding:
		return "sliding"
	case Session:
		return "session"
	case Count:
		return "count"
	case Global:
		return "global"
	case Custom:
		return "custom"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Aligned reports whether windows of this kind share trigger times across
// all keys (§2.1 "Aligned Read"). Custom windows report false: FlowKV
// conservatively assumes the unaligned pattern for them (§3.1).
func (k Kind) Aligned() bool {
	switch k {
	case Fixed, Sliding, Global:
		return true
	default:
		return false
	}
}

// Merging reports whether windows of this kind may merge after creation
// (only session windows do).
func (k Kind) Merging() bool { return k == Session }

// An Assigner maps an event timestamp to the set of windows the event
// belongs to, mirroring Flink's WindowAssigner. For kinds whose windows
// depend on arrival order rather than time (Count), Assign is driven by
// the per-key element sequence instead; see CountAssigner.
type Assigner interface {
	// Kind identifies the window function for store classification.
	Kind() Kind
	// Assign returns the windows containing an event with timestamp ts.
	// Tuples assigned to several windows are replicated by the SPE, one
	// copy per window (§2.1).
	Assign(ts int64) []Window
}

// FixedAssigner assigns tumbling windows of the given size.
type FixedAssigner struct {
	// Size is the window length in event-time milliseconds; must be > 0.
	Size int64
}

// Kind returns Fixed.
func (a FixedAssigner) Kind() Kind { return Fixed }

// Assign returns the single tumbling window containing ts.
func (a FixedAssigner) Assign(ts int64) []Window {
	start := floorTo(ts, a.Size)
	return []Window{{Start: start, End: start + a.Size}}
}

// SlidingAssigner assigns overlapping windows of Size every Slide.
type SlidingAssigner struct {
	// Size is the window length; Slide is the interval between successive
	// window starts. Size must be a positive multiple concern of Slide
	// for the common case; any Size >= Slide > 0 is accepted.
	Size, Slide int64
}

// Kind returns Sliding.
func (a SlidingAssigner) Kind() Kind { return Sliding }

// Assign returns every sliding window containing ts, latest start first
// replicated in ascending start order.
func (a SlidingAssigner) Assign(ts int64) []Window {
	lastStart := floorTo(ts, a.Slide)
	n := (a.Size + a.Slide - 1) / a.Slide
	wins := make([]Window, 0, n)
	for start := lastStart - (n-1)*a.Slide; start <= lastStart; start += a.Slide {
		if start+a.Size > ts { // ts < End
			wins = append(wins, Window{Start: start, End: start + a.Size})
		}
	}
	return wins
}

// SessionAssigner assigns per-key session windows delimited by Gap.
type SessionAssigner struct {
	// Gap is the inactivity period that closes a session, in milliseconds.
	Gap int64
}

// Kind returns Session.
func (a SessionAssigner) Kind() Kind { return Session }

// Assign returns the proto-window [ts, ts+Gap); the operator merges
// overlapping proto-windows per key (see Merge).
func (a SessionAssigner) Assign(ts int64) []Window {
	return []Window{{Start: ts, End: ts + a.Gap}}
}

// GlobalAssigner assigns every event to the single global window.
type GlobalAssigner struct{}

// Kind returns Global.
func (GlobalAssigner) Kind() Kind { return Global }

// Assign returns the global window.
func (GlobalAssigner) Assign(int64) []Window {
	return []Window{{Start: 0, End: MaxTime}}
}

// CountAssigner groups every Size consecutive elements of a key into one
// window. Count windows are timestamp-independent; the operator tracks a
// per-key element counter and calls AssignNth.
type CountAssigner struct {
	// Size is the number of elements per window; must be > 0.
	Size int64
}

// Kind returns Count.
func (a CountAssigner) Kind() Kind { return Count }

// Assign is unsupported for count windows; the operator must use
// AssignNth. It panics to catch misuse in development.
func (a CountAssigner) Assign(int64) []Window {
	panic("window: CountAssigner requires AssignNth(seq)")
}

// AssignNth returns the synthetic window for a key's n-th element
// (0-based). Count windows are encoded as [i*Size, (i+1)*Size) over the
// element-sequence domain rather than event time.
func (a CountAssigner) AssignNth(seq int64) Window {
	start := (seq / a.Size) * a.Size
	return Window{Start: start, End: start + a.Size}
}

// CustomAssigner wraps a user window function whose semantics FlowKV
// cannot inspect; it classifies as Custom (unaligned, no ETT) per §3.1.
type CustomAssigner struct {
	// AssignFunc computes the event's windows.
	AssignFunc func(ts int64) []Window
}

// Kind returns Custom.
func (CustomAssigner) Kind() Kind { return Custom }

// Assign invokes the wrapped function.
func (c CustomAssigner) Assign(ts int64) []Window { return c.AssignFunc(ts) }

// floorTo rounds ts down to a multiple of unit, correct for negative ts.
func floorTo(ts, unit int64) int64 {
	q := ts / unit
	if ts%unit < 0 {
		q--
	}
	return q * unit
}

// Merge merges a new proto-window into a key's existing set of session
// windows. existing must be non-overlapping; Merge returns the updated
// set (sorted by start), the merged result window, and the windows that
// were absorbed (which the caller must migrate state from).
func Merge(existing []Window, w Window) (updated []Window, merged Window, absorbed []Window) {
	merged = w
	updated = existing[:0:0]
	for _, e := range existing {
		if e.Overlaps(merged) {
			absorbed = append(absorbed, e)
			merged = merged.Cover(e)
		} else {
			updated = append(updated, e)
		}
	}
	// Insert merged keeping start order.
	at := len(updated)
	for i, e := range updated {
		if merged.Before(e) {
			at = i
			break
		}
	}
	updated = append(updated, Window{})
	copy(updated[at+1:], updated[at:])
	updated[at] = merged
	return updated, merged, absorbed
}

// A Predictor computes the estimated trigger time (ETT) of a window from
// statically-known window semantics plus runtime tuple timestamps, the
// core of predictive batch read (§4.2). ok is false when no useful lower
// bound exists (count and custom windows), in which case the AUR store
// degrades to on-demand reads.
type Predictor interface {
	// ETT returns a lower bound on the trigger time of window w given the
	// maximum tuple timestamp observed inside it.
	ETT(w Window, maxTS int64) (ett int64, ok bool)
}

// PredictorFor returns the pre-defined predictor for a window kind, or
// nil when the kind has none (Count, Custom without a user predictor).
// This is the §4.2 mapping from known window functions to predictors.
func PredictorFor(k Kind, a Assigner) Predictor {
	switch k {
	case Fixed, Sliding, Global:
		return EndTimePredictor{}
	case Session:
		sa, ok := a.(SessionAssigner)
		if !ok {
			return nil
		}
		return SessionPredictor{Gap: sa.Gap}
	default:
		return nil
	}
}

// EndTimePredictor predicts aligned windows: the trigger time is exactly
// the window end.
type EndTimePredictor struct{}

// ETT returns w.End.
func (EndTimePredictor) ETT(w Window, _ int64) (int64, bool) { return w.End, true }

// SessionPredictor predicts session windows: the window cannot trigger
// before maxTS + Gap, since any earlier trigger would require the session
// to have been inactive for a full gap already (§4.2).
type SessionPredictor struct {
	// Gap is the session gap in milliseconds.
	Gap int64
}

// ETT returns maxTS + Gap.
func (p SessionPredictor) ETT(_ Window, maxTS int64) (int64, bool) {
	return maxTS + p.Gap, true
}

// UserPredictor adapts a user-supplied ETT function for custom window
// operations (paper §8: FlowKV may receive predictors from users).
type UserPredictor struct {
	// Func computes the ETT; ok=false disables prediction for the window.
	Func func(w Window, maxTS int64) (int64, bool)
}

// ETT invokes the user function.
func (p UserPredictor) ETT(w Window, maxTS int64) (int64, bool) {
	return p.Func(w, maxTS)
}
