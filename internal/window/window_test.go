package window

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestWindowBasics(t *testing.T) {
	w := Window{Start: 100, End: 200}
	if w.Span() != 100 {
		t.Errorf("Span = %d", w.Span())
	}
	if !w.Contains(100) || !w.Contains(199) {
		t.Error("Contains should include [Start, End)")
	}
	if w.Contains(200) || w.Contains(99) {
		t.Error("Contains should exclude End and < Start")
	}
	if w.String() != "[100,200)" {
		t.Errorf("String = %q", w.String())
	}
}

func TestWindowOverlapsCover(t *testing.T) {
	a := Window{0, 100}
	b := Window{50, 150}
	c := Window{100, 200}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("a and b overlap")
	}
	if a.Overlaps(c) {
		t.Error("touching windows do not overlap (half-open)")
	}
	if got := a.Cover(b); got != (Window{0, 150}) {
		t.Errorf("Cover = %v", got)
	}
}

func TestWindowBefore(t *testing.T) {
	if !(Window{0, 10}).Before(Window{1, 5}) {
		t.Error("start ordering")
	}
	if !(Window{0, 5}).Before(Window{0, 10}) {
		t.Error("end tiebreak")
	}
	if (Window{0, 10}).Before(Window{0, 10}) {
		t.Error("equal windows are not Before")
	}
}

func TestWindowEncodeDecode(t *testing.T) {
	f := func(start, end int64) bool {
		w := Window{Start: start, End: end}
		b := w.AppendTo(nil)
		got, n, err := Decode(b)
		return err == nil && n == len(b) && got == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeShort(t *testing.T) {
	w := Window{Start: 123456789, End: 987654321}
	b := w.AppendTo(nil)
	if _, _, err := Decode(b[:1]); err == nil {
		t.Error("Decode of truncated input should fail")
	}
	if _, _, err := Decode(nil); err == nil {
		t.Error("Decode of empty input should fail")
	}
}

func TestKindProperties(t *testing.T) {
	aligned := map[Kind]bool{Fixed: true, Sliding: true, Global: true, Session: false, Count: false, Custom: false}
	for k, want := range aligned {
		if k.Aligned() != want {
			t.Errorf("%v.Aligned() = %v, want %v", k, k.Aligned(), want)
		}
	}
	if !Session.Merging() || Fixed.Merging() {
		t.Error("only session windows merge")
	}
	for _, k := range []Kind{Fixed, Sliding, Session, Count, Global, Custom} {
		if k.String() == "" {
			t.Errorf("kind %d has empty name", k)
		}
	}
}

func TestFixedAssigner(t *testing.T) {
	a := FixedAssigner{Size: 100}
	for _, tc := range []struct {
		ts   int64
		want Window
	}{
		{0, Window{0, 100}},
		{99, Window{0, 100}},
		{100, Window{100, 200}},
		{250, Window{200, 300}},
		{-1, Window{-100, 0}},
		{-100, Window{-100, 0}},
	} {
		got := a.Assign(tc.ts)
		if len(got) != 1 || got[0] != tc.want {
			t.Errorf("Assign(%d) = %v, want [%v]", tc.ts, got, tc.want)
		}
	}
}

func TestSlidingAssigner(t *testing.T) {
	// Paper Figure 1: size 100s, slide 50s => every tuple in 2 windows.
	a := SlidingAssigner{Size: 100_000, Slide: 50_000}
	got := a.Assign(120_000)
	want := []Window{{50_000, 150_000}, {100_000, 200_000}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Assign = %v, want %v", got, want)
	}
}

func TestSlidingAssignerInvariants(t *testing.T) {
	f := func(tsRaw int64, sizeRaw, slideRaw uint16) bool {
		slide := int64(slideRaw%1000) + 1
		size := slide * (int64(sizeRaw%8) + 1)
		ts := tsRaw % 1_000_000
		a := SlidingAssigner{Size: size, Slide: slide}
		wins := a.Assign(ts)
		if int64(len(wins)) != size/slide {
			return false
		}
		for i, w := range wins {
			if !w.Contains(ts) || w.Span() != size {
				return false
			}
			if w.Start%slide != 0 {
				return false
			}
			if i > 0 && wins[i-1].Start+slide != w.Start {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSessionAssigner(t *testing.T) {
	a := SessionAssigner{Gap: 30_000}
	got := a.Assign(1000)
	if len(got) != 1 || got[0] != (Window{1000, 31_000}) {
		t.Errorf("Assign = %v", got)
	}
}

func TestGlobalAssigner(t *testing.T) {
	got := GlobalAssigner{}.Assign(42)
	if len(got) != 1 || got[0] != (Window{0, MaxTime}) {
		t.Errorf("Assign = %v", got)
	}
}

func TestCountAssigner(t *testing.T) {
	a := CountAssigner{Size: 10}
	if w := a.AssignNth(0); w != (Window{0, 10}) {
		t.Errorf("AssignNth(0) = %v", w)
	}
	if w := a.AssignNth(9); w != (Window{0, 10}) {
		t.Errorf("AssignNth(9) = %v", w)
	}
	if w := a.AssignNth(10); w != (Window{10, 20}) {
		t.Errorf("AssignNth(10) = %v", w)
	}
	defer func() {
		if recover() == nil {
			t.Error("Assign on CountAssigner should panic")
		}
	}()
	a.Assign(0)
}

func TestCustomAssigner(t *testing.T) {
	c := CustomAssigner{AssignFunc: func(ts int64) []Window {
		return []Window{{ts, ts + 1}}
	}}
	if c.Kind() != Custom {
		t.Error("kind")
	}
	if got := c.Assign(5); len(got) != 1 || got[0] != (Window{5, 6}) {
		t.Errorf("Assign = %v", got)
	}
}

func TestMergeDisjoint(t *testing.T) {
	set, merged, absorbed := Merge(nil, Window{0, 10})
	if len(set) != 1 || merged != (Window{0, 10}) || len(absorbed) != 0 {
		t.Fatalf("first merge: %v %v %v", set, merged, absorbed)
	}
	set, merged, absorbed = Merge(set, Window{20, 30})
	if len(set) != 2 || len(absorbed) != 0 || merged != (Window{20, 30}) {
		t.Fatalf("disjoint merge: %v", set)
	}
	if !sort.SliceIsSorted(set, func(i, j int) bool { return set[i].Before(set[j]) }) {
		t.Error("set not sorted")
	}
}

func TestMergeAbsorbing(t *testing.T) {
	set := []Window{{0, 10}, {20, 30}, {40, 50}}
	// [5, 25) bridges the first two windows.
	updated, merged, absorbed := Merge(set, Window{5, 25})
	if merged != (Window{0, 30}) {
		t.Errorf("merged = %v", merged)
	}
	if len(absorbed) != 2 {
		t.Errorf("absorbed = %v", absorbed)
	}
	if len(updated) != 2 || updated[0] != (Window{0, 30}) || updated[1] != (Window{40, 50}) {
		t.Errorf("updated = %v", updated)
	}
}

func TestMergeSessionSimulation(t *testing.T) {
	// Simulate a session stream: events at random times; invariant: the
	// resulting window set is sorted, non-overlapping, and every event
	// time is covered by exactly one window extended by the gap.
	const gap = 100
	rng := rand.New(rand.NewSource(7))
	a := SessionAssigner{Gap: gap}
	var set []Window
	var times []int64
	for i := 0; i < 500; i++ {
		ts := int64(rng.Intn(10_000))
		times = append(times, ts)
		var w Window
		set, w, _ = Merge(set, a.Assign(ts)[0])
		if !w.Contains(ts) {
			t.Fatalf("merged window %v does not contain %d", w, ts)
		}
	}
	for i := 1; i < len(set); i++ {
		if set[i-1].Overlaps(set[i]) {
			t.Fatalf("overlapping session windows %v %v", set[i-1], set[i])
		}
		if !set[i-1].Before(set[i]) {
			t.Fatal("set not sorted")
		}
		if set[i].Start-set[i-1].End < 0 {
			t.Fatal("windows out of order")
		}
	}
	for _, ts := range times {
		var n int
		for _, w := range set {
			if w.Contains(ts) {
				n++
			}
		}
		if n != 1 {
			t.Fatalf("event %d covered by %d windows", ts, n)
		}
	}
}

func TestPredictorFor(t *testing.T) {
	if p := PredictorFor(Fixed, FixedAssigner{Size: 10}); p == nil {
		t.Fatal("fixed predictor missing")
	} else if ett, ok := p.ETT(Window{0, 10}, 5); !ok || ett != 10 {
		t.Errorf("fixed ETT = %d,%v", ett, ok)
	}
	if p := PredictorFor(Session, SessionAssigner{Gap: 30}); p == nil {
		t.Fatal("session predictor missing")
	} else if ett, ok := p.ETT(Window{0, 35}, 5); !ok || ett != 35 {
		t.Errorf("session ETT = %d,%v (want maxTS+gap=35)", ett, ok)
	}
	if p := PredictorFor(Count, CountAssigner{Size: 10}); p != nil {
		t.Error("count windows must have no predictor")
	}
	if p := PredictorFor(Custom, CustomAssigner{}); p != nil {
		t.Error("custom windows must have no predictor by default")
	}
	if p := PredictorFor(Session, CustomAssigner{}); p != nil {
		t.Error("session predictor requires a SessionAssigner")
	}
}

func TestSessionPredictorIsLowerBound(t *testing.T) {
	// Property: for any sequence of in-gap event times, the session
	// window's actual trigger time (last event + gap) is never earlier
	// than any ETT computed along the way.
	const gap = 50
	p := SessionPredictor{Gap: gap}
	f := func(deltas []uint8) bool {
		ts := int64(0)
		maxETT := int64(0)
		for _, d := range deltas {
			ts += int64(d % gap) // stay inside the session
			ett, ok := p.ETT(Window{}, ts)
			if !ok {
				return false
			}
			if ett > maxETT {
				maxETT = ett
			}
		}
		actualTrigger := ts + gap
		return actualTrigger >= maxETT
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUserPredictor(t *testing.T) {
	p := UserPredictor{Func: func(w Window, maxTS int64) (int64, bool) {
		return w.End + maxTS, true
	}}
	if ett, ok := p.ETT(Window{0, 10}, 3); !ok || ett != 13 {
		t.Errorf("ETT = %d,%v", ett, ok)
	}
}

func BenchmarkSlidingAssign(b *testing.B) {
	a := SlidingAssigner{Size: 100_000, Slide: 50_000}
	for i := 0; i < b.N; i++ {
		a.Assign(int64(i) * 137)
	}
}

func BenchmarkSessionMerge(b *testing.B) {
	a := SessionAssigner{Gap: 100}
	rng := rand.New(rand.NewSource(1))
	var set []Window
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(set) > 64 {
			set = set[:0]
		}
		set, _, _ = Merge(set, a.Assign(int64(rng.Intn(100_000)))[0])
	}
}
